//! Asynchronous update propagation (§4.2 and the `Propagate` /
//! `PropagateResponse` pseudo-code).
//!
//! When a write marks replicas stale, the good replicas receive the stale
//! list and bring those replicas up to date in the background. Many good
//! replicas may try; the target serializes them with the three-way offer
//! reply (`already-recovering` / `i-am-current` / `propagation-permitted`).
//! Both ends lock their replicas for the duration of the transfer — the
//! paper notes this simple discipline can interfere with foreground writes
//! and suggests logging as an optimization; we keep the simple locking and
//! stagger sources with jitter instead.

use crate::engine::metrics::keys;
use crate::msg::{Msg, OpId, PropPayload, PropReply, ProtocolEvent};
use crate::node::{NodeCtx, ReplicaNode, Timer};
use coterie_base::{SimTime, TimerId};
use coterie_quorum::{NodeId, NodeSet};
use std::collections::BTreeMap;

/// Outgoing propagation state at a good replica.
#[derive(Clone, Debug, Default)]
pub struct Propagator {
    /// Stale replicas still to bring up to date.
    pub remaining: NodeSet,
    /// The single in-flight attempt (the paper's `foreach` is sequential).
    pub in_flight: Option<PropFlight>,
    /// Failed attempts per target (capped; epoch checking eventually drops
    /// persistently dead targets from the epoch).
    pub attempts: BTreeMap<NodeId, u32>,
    /// Whether a kick timer is pending.
    pub kick_armed: bool,
    /// Re-offer coalescing deadlines: a target brought current at time `t`
    /// is not offered to again before `t + propagation_coalesce`, so a
    /// write burst re-marking it stale yields one offer covering the whole
    /// burst instead of one offer (plus data and ack) per delta.
    pub cooldown: BTreeMap<NodeId, SimTime>,
}

/// One in-flight propagation attempt.
#[derive(Clone, Debug)]
pub struct PropFlight {
    /// Attempt id.
    pub prop: OpId,
    /// The stale target.
    pub target: NodeId,
    /// True once the data transfer has been sent.
    pub sending: bool,
    /// True while we hold our own replica lock for the transfer.
    pub holds_lock: bool,
    /// Attempt timeout.
    pub timer: TimerId,
}

/// Target-side state of an accepted propagation (the paper's
/// `locked-for-propagation` bit, with the source recorded).
#[derive(Clone, Debug)]
pub struct IncomingProp {
    /// Attempt id.
    pub prop: OpId,
    /// The source replica.
    pub source: NodeId,
    /// Guard timer releasing the lock if the source vanishes.
    pub lease: TimerId,
    /// Whether the replica lock was taken (paper's locking mode).
    pub locked: bool,
}

impl ReplicaNode {
    /// Adds targets to the propagation work list and schedules a kick.
    pub(crate) fn start_propagation(&mut self, ctx: &mut NodeCtx<'_>, targets: NodeSet) {
        if self.durable.stale {
            return; // a stale replica is never a propagation source
        }
        let new = targets.difference(NodeSet::singleton(self.me));
        if new.is_empty() {
            return;
        }
        self.vol.propagator.remaining = self.vol.propagator.remaining.union(new);
        self.kick_propagation(ctx, true);
    }

    /// Arms a kick timer if none is pending. `jittered` staggers competing
    /// sources after a write; retries back off exponentially in the next
    /// target's failed-attempt count (capped), plus jitter so competing
    /// sources do not re-collide in lockstep.
    fn kick_propagation(&mut self, ctx: &mut NodeCtx<'_>, jittered: bool) {
        if self.vol.propagator.kick_armed || self.vol.propagator.in_flight.is_some() {
            return;
        }
        let Some(next) = self.vol.propagator.remaining.min() else {
            return;
        };
        let mut delay = if jittered {
            self.jitter(ctx, self.config.propagation_jitter)
        } else {
            let attempts = self
                .vol
                .propagator
                .attempts
                .get(&next)
                .copied()
                .unwrap_or(0);
            let base = self.config.propagation_retry * (1u64 << attempts.min(6));
            base + self.jitter(ctx, self.config.propagation_jitter)
        };
        // Re-offer coalescing: a target we just brought current waits out
        // its cooldown, so the next offer carries the whole burst.
        match self.vol.propagator.cooldown.get(&next) {
            Some(&until) if until > ctx.now() => {
                delay = delay.max(until - ctx.now());
            }
            Some(_) => {
                self.vol.propagator.cooldown.remove(&next);
            }
            None => {}
        }
        ctx.set_timer(delay, Timer::PropKick);
        self.vol.propagator.kick_armed = true;
    }

    /// The kick timer fired: offer propagation to the next target.
    pub(crate) fn on_prop_kick(&mut self, ctx: &mut NodeCtx<'_>) {
        self.vol.propagator.kick_armed = false;
        if self.vol.propagator.in_flight.is_some() || self.durable.stale {
            return;
        }
        let Some(target) = self.vol.propagator.remaining.min() else {
            return;
        };
        // Still cooling down (the kick was armed for a different target, or
        // the target was re-added since): re-arm for the remainder.
        if self
            .vol
            .propagator
            .cooldown
            .get(&target)
            .is_some_and(|&until| until > ctx.now())
        {
            self.kick_propagation(ctx, true);
            return;
        }
        self.vol.propagator.cooldown.remove(&target);
        let prop = self.next_op();
        let timeout = self.config.collect_timeout * 4;
        let timer = ctx.set_timer(timeout, Timer::PropTimeout { prop });
        self.vol.propagator.in_flight = Some(PropFlight {
            prop,
            target,
            sending: false,
            holds_lock: false,
            timer,
        });
        ctx.send(
            target,
            Msg::PropOffer {
                prop,
                version: self.durable.version,
            },
        );
    }

    /// Target side: `PropagateResponse`.
    pub(crate) fn srv_prop_offer(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        from: NodeId,
        prop: OpId,
        source_version: u64,
    ) {
        // Rejoin limbo: the desired version is not known yet, so a safe
        // source cannot be told from an obsolete one — defer the offer.
        // "if locked-for-propagation = 1 then reply already-recovering".
        if self.vol.incoming_prop.is_some() || self.in_rejoin_limbo() {
            ctx.send(
                from,
                Msg::PropResp {
                    prop,
                    reply: PropReply::AlreadyRecovering,
                },
            );
            return;
        }
        // "if stale-data = 1 and desired-version-number <= v".
        if !(self.durable.stale && self.durable.dversion <= source_version) {
            ctx.send(
                from,
                Msg::PropResp {
                    prop,
                    reply: PropReply::IAmCurrent,
                },
            );
            return;
        }
        // Locking mode: take the replica lock (no-wait — a busy replica
        // defers the recovery). Lock-free mode: refuse only while a
        // two-phase commit is actively touching this replica, which keeps
        // propagation from racing a prepared update.
        let locked = if self.config.lock_propagation {
            if !matches!(
                self.vol.lock.try_exclusive(prop),
                crate::locks::LockGrant::Granted
            ) {
                ctx.send(
                    from,
                    Msg::PropResp {
                        prop,
                        reply: PropReply::AlreadyRecovering,
                    },
                );
                return;
            }
            true
        } else {
            if self.vol.lock.exclusive_holder().is_some() || self.durable.prepared.is_some() {
                ctx.send(
                    from,
                    Msg::PropResp {
                        prop,
                        reply: PropReply::AlreadyRecovering,
                    },
                );
                return;
            }
            false
        };
        let lease = ctx.set_timer(self.config.lock_lease, Timer::PropLease { prop });
        self.vol.incoming_prop = Some(IncomingProp {
            prop,
            source: from,
            lease,
            locked,
        });
        ctx.send(
            from,
            Msg::PropResp {
                prop,
                reply: PropReply::Permitted {
                    target_version: self.durable.version,
                },
            },
        );
    }

    /// Source side: the target answered our offer.
    pub(crate) fn on_prop_resp(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        from: NodeId,
        prop: OpId,
        reply: PropReply,
    ) {
        let Some(flight) = &self.vol.propagator.in_flight else {
            return;
        };
        if flight.prop != prop {
            return;
        }
        match reply {
            PropReply::IAmCurrent => {
                // "STALE-NODES := STALE-NODES \ {node}".
                self.clear_flight(ctx, true);
                self.kick_propagation(ctx, true);
            }
            PropReply::AlreadyRecovering => {
                // "pause(some-time)" and retry later.
                self.clear_flight(ctx, false);
                self.bump_attempts(from);
                self.kick_propagation(ctx, false);
            }
            PropReply::Permitted { target_version } => {
                // Locking mode: "On receiving permission, the coordinator
                // locks its replica and propagates missing updates".
                // Lock-free mode: the log suffix is an atomic snapshot, so
                // no source lock is needed.
                let source_locked = if self.config.lock_propagation {
                    matches!(
                        self.vol.lock.try_exclusive(prop),
                        crate::locks::LockGrant::Granted
                    )
                } else {
                    false
                };
                if self.durable.stale || (self.config.lock_propagation && !source_locked) {
                    // Our replica is busy (or we were marked stale since):
                    // abandon this attempt, let the target unlock.
                    if source_locked {
                        self.release_lock(ctx, prop);
                    }
                    ctx.send(from, Msg::PropCancel { prop });
                    self.clear_flight(ctx, false);
                    self.bump_attempts(from);
                    self.kick_propagation(ctx, false);
                    return;
                }
                let payload = match self.durable.log.updates_since(target_version) {
                    Some(entries) => PropPayload::Updates { entries },
                    None => PropPayload::Snapshot {
                        pages: self.durable.object.snapshot(),
                        version: self.durable.version,
                    },
                };
                let source_version = self.durable.version;
                if let Some(flight) = &mut self.vol.propagator.in_flight {
                    flight.sending = true;
                    flight.holds_lock = source_locked;
                }
                ctx.send(
                    from,
                    Msg::PropData {
                        prop,
                        payload,
                        source_version,
                    },
                );
            }
        }
    }

    /// Target side: apply the transfer.
    pub(crate) fn srv_prop_data(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        from: NodeId,
        prop: OpId,
        payload: PropPayload,
        source_version: u64,
    ) {
        // Take ownership up front: every path below consumes the incoming
        // slot, and owning `inc` here removes the check-then-take panics.
        let inc = match self.vol.incoming_prop.take() {
            Some(inc) if inc.prop == prop => inc,
            other => {
                self.vol.incoming_prop = other;
                ctx.send(from, Msg::PropAck { prop, ok: false });
                return;
            }
        };
        // Lock-free fence: a two-phase commit grabbed the replica between
        // the offer and the transfer — back off, retry later.
        if !inc.locked
            && (self
                .vol
                .lock
                .exclusive_holder()
                .is_some_and(|holder| holder != prop)
                || self.durable.prepared.is_some())
        {
            ctx.cancel_timer(inc.lease);
            ctx.send(from, Msg::PropAck { prop, ok: false });
            return;
        }
        let ok = match payload {
            PropPayload::Updates { entries } => {
                let mut applied = true;
                for entry in entries {
                    if entry.version != self.durable.version + 1 {
                        applied = false;
                        break;
                    }
                    self.durable.object.apply(&entry.write);
                    self.durable.version = entry.version;
                    self.durable.log.push(entry);
                }
                applied && self.durable.version == source_version
            }
            PropPayload::Snapshot { pages, version } => {
                self.durable.object.restore(pages);
                self.durable.version = version;
                self.durable.log.clear();
                version == source_version
            }
        };
        if ok && self.durable.version >= self.durable.dversion {
            // Caught up past the desired version: current again.
            self.durable.stale = false;
            self.durable.dversion = 0;
        }
        ctx.cancel_timer(inc.lease);
        if inc.locked {
            self.release_lock(ctx, prop);
        }
        ctx.send(from, Msg::PropAck { prop, ok });
    }

    /// Source side: transfer acknowledged.
    pub(crate) fn on_prop_ack(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        from: NodeId,
        prop: OpId,
        ok: bool,
    ) {
        let Some(flight) = &self.vol.propagator.in_flight else {
            return;
        };
        if flight.prop != prop {
            return;
        }
        if ok {
            self.stats.registry.inc(keys::PROPAGATIONS_DONE);
            let version = self.durable.version;
            ctx.output(ProtocolEvent::Propagated {
                target: from,
                version,
            });
            self.clear_flight(ctx, true);
            self.kick_propagation(ctx, true);
        } else {
            self.clear_flight(ctx, false);
            self.bump_attempts(from);
            self.kick_propagation(ctx, false);
        }
    }

    /// Target side: the source abandoned a permitted transfer.
    pub(crate) fn srv_prop_cancel(&mut self, ctx: &mut NodeCtx<'_>, _from: NodeId, prop: OpId) {
        match self.vol.incoming_prop.take() {
            Some(inc) if inc.prop == prop => {
                ctx.cancel_timer(inc.lease);
                if inc.locked {
                    self.release_lock(ctx, prop);
                }
            }
            other => self.vol.incoming_prop = other,
        }
    }

    /// Source side: the offer or transfer went unanswered.
    pub(crate) fn on_prop_timeout(&mut self, ctx: &mut NodeCtx<'_>, prop: OpId) {
        let target = match self.vol.propagator.in_flight.as_ref() {
            Some(flight) if flight.prop == prop => flight.target,
            _ => return,
        };
        ctx.send(target, Msg::PropCancel { prop });
        self.clear_flight(ctx, false);
        self.bump_attempts(target);
        self.kick_propagation(ctx, false);
    }

    /// Source side: the offer or data bounced (`RPC.CallFailed`).
    pub(crate) fn on_prop_peer_failed(&mut self, ctx: &mut NodeCtx<'_>, prop: OpId, to: NodeId) {
        let is_current = self
            .vol
            .propagator
            .in_flight
            .as_ref()
            .is_some_and(|f| f.prop == prop);
        if !is_current {
            return;
        }
        self.clear_flight(ctx, false);
        self.bump_attempts(to);
        self.kick_propagation(ctx, false);
    }

    /// Target side: a permitted propagation never completed; release the
    /// lock so foreground work can proceed.
    pub(crate) fn on_prop_lease(&mut self, ctx: &mut NodeCtx<'_>, prop: OpId) {
        let matches_incoming = self
            .vol
            .incoming_prop
            .as_ref()
            .is_some_and(|inc| inc.prop == prop);
        if matches_incoming {
            let locked = self
                .vol
                .incoming_prop
                .take()
                .map(|i| i.locked)
                .unwrap_or(false);
            if locked {
                self.release_lock(ctx, prop);
            }
        }
    }

    /// Drops the in-flight attempt; `done` removes the target from the
    /// work list.
    fn clear_flight(&mut self, ctx: &mut NodeCtx<'_>, done: bool) {
        if let Some(flight) = self.vol.propagator.in_flight.take() {
            ctx.cancel_timer(flight.timer);
            if flight.holds_lock {
                self.release_lock(ctx, flight.prop);
            }
            if done {
                self.vol.propagator.remaining.remove(flight.target);
                self.vol.propagator.attempts.remove(&flight.target);
                // Start the re-offer coalescing window: if newer writes
                // re-mark this target stale, the next offer waits until
                // the window closes and covers all of them at once.
                self.vol
                    .propagator
                    .cooldown
                    .insert(flight.target, ctx.now() + self.config.propagation_coalesce);
            }
        }
    }

    fn bump_attempts(&mut self, target: NodeId) {
        let n = self.vol.propagator.attempts.entry(target).or_insert(0);
        *n += 1;
        if *n >= self.config.max_prop_attempts {
            // Give up: the epoch-checking protocol owns long-term repair.
            self.vol.propagator.remaining.remove(target);
            self.vol.propagator.attempts.remove(&target);
        }
    }
}
