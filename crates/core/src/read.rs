//! The read coordinator. "The read protocol is similar to the write
//! protocol except it does not update any replicas" (§4): collect shared
//! locks from a read quorum, identify a current replica (non-stale, maximum
//! version, at or above every stale responder's desired version), fetch the
//! object from it, release, and return.

use crate::classify::Classified;
use crate::engine::metrics::keys;
use crate::msg::{ClientRequest, FailReason, Msg, OpId, ProtocolEvent, StateTuple};
use crate::node::{NodeCtx, ReplicaNode, Timer};
use bytes::Bytes;
use coterie_base::TimerId;
use coterie_quorum::{quorum_seed, NodeId, NodeSet, QuorumKind};
use std::collections::BTreeMap;

/// Phase of a coordinated read.
#[derive(Clone, Debug)]
pub enum RPhase {
    /// Gathering permission responses.
    Collect,
    /// Fetching the data from a chosen current replica.
    Fetch {
        /// The chosen replica.
        target: NodeId,
        /// Other current candidates, in case the fetch fails.
        alternates: Vec<NodeId>,
        /// Minimum version the snapshot must carry.
        min_version: u64,
        /// Fetch timeout.
        timer: TimerId,
    },
}

/// Volatile state of one coordinated read.
#[derive(Clone, Debug)]
pub struct ReadCoordinator {
    /// Operation id.
    pub op: OpId,
    /// Client request id.
    pub client_id: u64,
    /// Retry attempt.
    pub attempt: u32,
    /// Current phase.
    pub phase: RPhase,
    /// Granted responses.
    pub granted: BTreeMap<NodeId, StateTuple>,
    /// Busy refusals.
    pub refused: NodeSet,
    /// Failures.
    pub failed: NodeSet,
    /// Nodes polled.
    pub polled: NodeSet,
    /// Whether the heavy (poll-everyone) pass has run.
    pub heavy: bool,
    /// Collection timeout.
    pub collect_timer: Option<TimerId>,
}

impl ReadCoordinator {
    fn answered(&self) -> NodeSet {
        NodeSet::from_iter(self.granted.keys().copied())
            .union(self.refused)
            .union(self.failed)
    }

    fn collect_done(&self) -> bool {
        self.polled.is_subset_of(self.answered())
    }
}

impl ReplicaNode {
    /// Starts coordinating a client read.
    pub(crate) fn start_read(&mut self, ctx: &mut NodeCtx<'_>, client_id: u64, attempt: u32) {
        let op = self.next_op();
        let view = self.durable.epoch_view();
        let seed = quorum_seed(self.me, op.seq);
        let Some(quorum) = self
            .config
            .rule
            .pick_quorum(&view, view.set(), seed, QuorumKind::Read)
        else {
            self.stats.registry.inc(keys::READS_FAILED);
            ctx.output(ProtocolEvent::Failed {
                id: client_id,
                reason: FailReason::NoQuorum,
            });
            return;
        };
        let timeout = self.config.collect_timeout;
        let timer = ctx.set_timer(timeout, Timer::Collect { op });
        let rc = ReadCoordinator {
            op,
            client_id,
            attempt,
            phase: RPhase::Collect,
            granted: BTreeMap::new(),
            refused: NodeSet::new(),
            failed: NodeSet::new(),
            polled: quorum,
            heavy: false,
            collect_timer: Some(timer),
        };
        for node in quorum.iter() {
            ctx.send(node, Msg::ReadReq { op });
        }
        self.vol.reads.insert(op, rc);
    }

    /// A permission response for a read op.
    pub(crate) fn read_state_resp(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        op: OpId,
        granted: bool,
        state: StateTuple,
    ) {
        let Some(rc) = self.vol.reads.get_mut(&op) else {
            return;
        };
        if !matches!(rc.phase, RPhase::Collect) {
            return;
        }
        if granted {
            rc.granted.insert(state.node, state);
        } else {
            rc.refused.insert(state.node);
        }
        if rc.collect_done() {
            self.evaluate_read(ctx, op);
        }
    }

    /// `RPC.CallFailed` for a read permission request.
    pub(crate) fn on_read_peer_failed(&mut self, ctx: &mut NodeCtx<'_>, op: OpId, to: NodeId) {
        let Some(rc) = self.vol.reads.get_mut(&op) else {
            return;
        };
        if !matches!(rc.phase, RPhase::Collect) {
            return;
        }
        rc.failed.insert(to);
        if rc.collect_done() {
            self.evaluate_read(ctx, op);
        }
    }

    /// Collection timeout for a read.
    pub(crate) fn read_collect_timeout(&mut self, ctx: &mut NodeCtx<'_>, op: OpId) {
        let Some(rc) = self.vol.reads.get_mut(&op) else {
            return;
        };
        if !matches!(rc.phase, RPhase::Collect) {
            return;
        }
        rc.collect_timer = None;
        let silent = rc.polled.difference(rc.answered());
        rc.failed = rc.failed.union(silent);
        self.evaluate_read(ctx, op);
    }

    fn evaluate_read(&mut self, ctx: &mut NodeCtx<'_>, op: OpId) {
        let Some(rc) = self.vol.reads.get_mut(&op) else {
            return;
        };
        if let Some(t) = rc.collect_timer.take() {
            ctx.cancel_timer(t);
        }
        let classified = Classified::evaluate(
            &*self.config.rule,
            &mut self.vol.plans,
            &rc.granted,
            QuorumKind::Read,
        );
        match classified {
            Some(c) if c.has_quorum && c.has_current_replica() => {
                // Fetch from a current replica; prefer ourselves (free).
                let mut candidates = c.good.clone();
                if let Some(pos) = candidates.iter().position(|&n| n == self.me) {
                    candidates.swap(0, pos);
                }
                let target = candidates[0];
                let alternates = candidates[1..].to_vec();
                // lint:allow(panic): GOOD is nonempty on this path, so a max version exists
                let min_version = c.max_version.expect("good nonempty");
                if target == self.me {
                    // Local fast path: we hold our own shared lock.
                    let version = self.durable.version;
                    let pages = self.durable.object.snapshot();
                    self.finish_read_ok(ctx, op, version, pages);
                    return;
                }
                let timeout = self.config.collect_timeout;
                let timer = ctx.set_timer(timeout, Timer::Fetch { op });
                rc.phase = RPhase::Fetch {
                    target,
                    alternates,
                    min_version,
                    timer,
                };
                ctx.send(target, Msg::FetchReq { op });
            }
            Some(c) if c.has_quorum => {
                // Quorum but no current replica reachable.
                if rc.heavy {
                    self.finish_read_fail(ctx, op, FailReason::NoCurrentReplica);
                } else {
                    self.go_heavy_read(ctx, op);
                }
            }
            _ => {
                if rc.heavy {
                    let reason = self.read_failure_reason(op);
                    self.finish_read_fail(ctx, op, reason);
                } else if self.read_failure_reason(op) == FailReason::Contention {
                    // Contention, not failure: back off and retry light.
                    self.finish_read_fail(ctx, op, FailReason::Contention);
                } else {
                    self.go_heavy_read(ctx, op);
                }
            }
        }
    }

    fn read_failure_reason(&mut self, op: OpId) -> FailReason {
        let Some(rc) = self.vol.reads.get(&op) else {
            return FailReason::NoQuorum;
        };
        if rc.refused.is_empty() {
            return FailReason::NoQuorum;
        }
        let optimistic = rc
            .granted
            .keys()
            .copied()
            .collect::<NodeSet>()
            .union(rc.refused);
        let view = self.durable.epoch_view();
        let rule = &*self.config.rule;
        if self.vol.plans.plan_for(rule, &view).includes_quorum_with(
            rule,
            optimistic,
            QuorumKind::Read,
        ) {
            FailReason::Contention
        } else {
            FailReason::NoQuorum
        }
    }

    fn go_heavy_read(&mut self, ctx: &mut NodeCtx<'_>, op: OpId) {
        self.stats.registry.inc(keys::HEAVY_RUNS);
        let all = NodeSet::from_iter(self.all_nodes());
        let Some(rc) = self.vol.reads.get_mut(&op) else {
            return;
        };
        rc.heavy = true;
        let remaining = all.difference(rc.polled);
        if remaining.is_empty() {
            self.evaluate_read(ctx, op);
            return;
        }
        rc.polled = all;
        let timeout = self.config.collect_timeout;
        rc.collect_timer = Some(ctx.set_timer(timeout, Timer::Collect { op }));
        for node in remaining.iter() {
            ctx.send(node, Msg::ReadReq { op });
        }
    }

    /// A fetch response for a read op.
    pub(crate) fn read_fetch_resp(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        op: OpId,
        version: u64,
        pages: Vec<Bytes>,
    ) {
        let Some(rc) = self.vol.reads.get_mut(&op) else {
            return;
        };
        let RPhase::Fetch {
            min_version, timer, ..
        } = &rc.phase
        else {
            return;
        };
        // A lower version than promised means the target crashed and lost
        // our shared lock (its state may have rolled forward only): reject
        // and fall back.
        if version < *min_version {
            let timer = *timer;
            ctx.cancel_timer(timer);
            self.read_try_alternate(ctx, op);
            return;
        }
        let timer = *timer;
        ctx.cancel_timer(timer);
        self.finish_read_ok(ctx, op, version, pages);
    }

    /// Fetch failed (target unreachable).
    pub(crate) fn read_fetch_failed(&mut self, ctx: &mut NodeCtx<'_>, op: OpId) {
        if let Some(rc) = self.vol.reads.get_mut(&op) {
            if let RPhase::Fetch { timer, .. } = &rc.phase {
                let timer = *timer;
                ctx.cancel_timer(timer);
                self.read_try_alternate(ctx, op);
            }
        }
    }

    /// Fetch timeout.
    pub(crate) fn read_fetch_timeout(&mut self, ctx: &mut NodeCtx<'_>, op: OpId) {
        if self
            .vol
            .reads
            .get(&op)
            .is_some_and(|rc| matches!(rc.phase, RPhase::Fetch { .. }))
        {
            self.read_try_alternate(ctx, op);
        }
    }

    fn read_try_alternate(&mut self, ctx: &mut NodeCtx<'_>, op: OpId) {
        let Some(rc) = self.vol.reads.get_mut(&op) else {
            return;
        };
        let RPhase::Fetch {
            alternates,
            min_version,
            ..
        } = &mut rc.phase
        else {
            return;
        };
        if alternates.is_empty() {
            self.finish_read_fail(ctx, op, FailReason::CommitFailed);
            return;
        }
        let target = alternates.remove(0);
        let min_version = *min_version;
        let alternates = alternates.clone();
        let timeout = self.config.collect_timeout;
        let timer = ctx.set_timer(timeout, Timer::Fetch { op });
        rc.phase = RPhase::Fetch {
            target,
            alternates,
            min_version,
            timer,
        };
        ctx.send(target, Msg::FetchReq { op });
    }

    fn finish_read_ok(&mut self, ctx: &mut NodeCtx<'_>, op: OpId, version: u64, pages: Vec<Bytes>) {
        let Some(rc) = self.vol.reads.remove(&op) else {
            return;
        };
        for &n in rc.granted.keys() {
            ctx.send(n, Msg::Release { op });
        }
        self.stats.registry.inc(keys::READS_OK);
        let digest = {
            let mut o = crate::store::PagedObject::new(pages.len());
            o.restore(pages.clone());
            o.digest()
        };
        ctx.output(ProtocolEvent::ReadOk {
            id: rc.client_id,
            version,
            digest,
            pages,
        });
    }

    fn finish_read_fail(&mut self, ctx: &mut NodeCtx<'_>, op: OpId, reason: FailReason) {
        let Some(mut rc) = self.vol.reads.remove(&op) else {
            return;
        };
        if let Some(t) = rc.collect_timer.take() {
            ctx.cancel_timer(t);
        }
        if let RPhase::Fetch { timer, .. } = &rc.phase {
            ctx.cancel_timer(*timer);
        }
        for &n in rc.granted.keys() {
            ctx.send(n, Msg::Release { op });
        }
        let retryable = matches!(reason, FailReason::Contention | FailReason::CommitFailed);
        if retryable && rc.attempt < self.config.max_retries {
            let delay = self.backoff(ctx, rc.attempt + 1);
            ctx.set_timer(
                delay,
                Timer::RetryClient {
                    attempt: rc.attempt + 1,
                    request: ClientRequest::Read { id: rc.client_id },
                },
            );
            return;
        }
        self.stats.registry.inc(keys::READS_FAILED);
        ctx.output(ProtocolEvent::Failed {
            id: rc.client_id,
            reason,
        });
    }
}
