//! The replicated data item: a paged object supporting *partial writes*.
//!
//! The paper's motivating class of systems (file systems) update "only a
//! portion of the data item rather than replacing it entirely with a new
//! value" (§3). We model the data item as a fixed array of pages; a
//! [`PartialWrite`] touches a subset of the pages. Each replica keeps a
//! bounded [`WriteLog`] of recent writes so that update propagation can ship
//! just the missing suffix of writes to a stale replica, falling back to a
//! full snapshot when the log has been trimmed.

use bytes::Bytes;

/// Index of a page within the data item.
pub type PageId = u16;

/// A partial write: new contents for a subset of pages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartialWrite {
    /// Updated pages, each `(page, new contents)`. Pages may appear at most
    /// once; see [`PartialWrite::new`].
    pub pages: Vec<(PageId, Bytes)>,
}

impl PartialWrite {
    /// Builds a partial write; later duplicates of a page override earlier
    /// ones (last-writer-wins within one write).
    pub fn new<I: IntoIterator<Item = (PageId, Bytes)>>(pages: I) -> Self {
        let mut v: Vec<(PageId, Bytes)> = pages.into_iter().collect();
        // Stable de-dup keeping the last occurrence.
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::with_capacity(v.len());
        while let Some(entry) = v.pop() {
            if seen.insert(entry.0) {
                out.push(entry);
            }
        }
        out.reverse();
        PartialWrite { pages: out }
    }

    /// A write that replaces the whole object (a "total write", the only
    /// kind the conventional protocols support efficiently).
    pub fn total(contents: Vec<Bytes>) -> Self {
        PartialWrite {
            pages: contents
                .into_iter()
                .enumerate()
                .map(|(i, b)| (i as PageId, b))
                .collect(),
        }
    }

    /// Number of pages touched.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True if the write touches no pages (legal; bumps the version only).
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Total payload bytes.
    pub fn payload_bytes(&self) -> usize {
        self.pages.iter().map(|(_, b)| b.len()).sum()
    }
}

/// The materialized data item at one replica.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PagedObject {
    pages: Vec<Bytes>,
}

impl PagedObject {
    /// An object of `n_pages` empty pages.
    pub fn new(n_pages: usize) -> Self {
        PagedObject {
            pages: vec![Bytes::new(); n_pages],
        }
    }

    /// Number of pages.
    pub fn n_pages(&self) -> usize {
        self.pages.len()
    }

    /// Contents of page `p`, if it exists.
    pub fn page(&self, p: PageId) -> Option<&Bytes> {
        self.pages.get(p as usize)
    }

    /// Applies a partial write. Pages beyond the object are ignored
    /// (validated at the client boundary; defensive here).
    pub fn apply(&mut self, write: &PartialWrite) {
        for (p, contents) in &write.pages {
            if let Some(slot) = self.pages.get_mut(*p as usize) {
                *slot = contents.clone();
            }
        }
    }

    /// Full snapshot of the pages (cheap: `Bytes` clones are refcounted).
    pub fn snapshot(&self) -> Vec<Bytes> {
        self.pages.clone()
    }

    /// Replaces the whole object from a snapshot.
    pub fn restore(&mut self, snapshot: Vec<Bytes>) {
        self.pages = snapshot;
    }

    /// Overwrites one page in place (journal replay). Out-of-range pages
    /// are ignored, mirroring [`apply`](PagedObject::apply).
    pub fn write_page(&mut self, p: PageId, contents: Bytes) {
        if let Some(slot) = self.pages.get_mut(p as usize) {
            *slot = contents;
        }
    }

    /// An order-sensitive FNV-1a digest over all pages, used by the
    /// consistency checker to compare replica contents cheaply.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for page in &self.pages {
            for chunk in (page.len() as u32).to_le_bytes() {
                eat(chunk);
            }
            for &b in page.iter() {
                eat(b);
            }
        }
        h
    }
}

/// One committed write in the log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogEntry {
    /// The version the object reached by applying this write.
    pub version: u64,
    /// The write itself.
    pub write: PartialWrite,
}

/// A bounded log of recent writes, ordered by version.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WriteLog {
    entries: std::collections::VecDeque<LogEntry>,
    cap: usize,
}

impl WriteLog {
    /// A log retaining at most `cap` recent writes.
    pub fn new(cap: usize) -> Self {
        WriteLog {
            entries: std::collections::VecDeque::with_capacity(cap.min(64)),
            cap,
        }
    }

    /// Appends a committed write; versions must be strictly increasing.
    pub fn push(&mut self, entry: LogEntry) {
        if let Some(last) = self.entries.back() {
            debug_assert!(entry.version > last.version, "log versions must increase");
        }
        self.entries.push_back(entry);
        while self.entries.len() > self.cap {
            self.entries.pop_front();
        }
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the log holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The retention bound this log was created with.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// The retained entries in version order (journal codec and tests).
    pub fn iter(&self) -> impl Iterator<Item = &LogEntry> {
        self.entries.iter()
    }

    /// The writes needed to carry a replica from `from_version` up to the
    /// newest logged version, i.e. all entries with `version > from_version`
    /// — or `None` if the log has been trimmed past `from_version + 1`
    /// (the caller must fall back to a snapshot).
    pub fn updates_since(&self, from_version: u64) -> Option<Vec<LogEntry>> {
        let first = self.entries.front()?;
        if from_version + 1 < first.version {
            return None; // gap: the needed prefix was trimmed
        }
        Some(
            self.entries
                .iter()
                .filter(|e| e.version > from_version)
                .cloned()
                .collect(),
        )
    }

    /// Version of the newest retained entry, or 0 if empty. Together with
    /// [`len`](WriteLog::len) this identifies the log's contents, because
    /// versions are strictly increasing and entries are only appended or
    /// trimmed from the front.
    pub fn newest_version(&self) -> u64 {
        self.entries.back().map_or(0, |e| e.version)
    }

    /// Clears the log (used when restoring from a snapshot).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn partial_write_dedups_keeping_last() {
        let w = PartialWrite::new([(1, b("old")), (2, b("x")), (1, b("new"))]);
        assert_eq!(w.len(), 2);
        let page1 = w.pages.iter().find(|(p, _)| *p == 1).unwrap();
        assert_eq!(page1.1, b("new"));
        assert_eq!(w.payload_bytes(), 4);
        assert!(!w.is_empty());
        assert!(PartialWrite::new([]).is_empty());
    }

    #[test]
    fn total_write_covers_all_pages() {
        let w = PartialWrite::total(vec![b("a"), b("bb")]);
        assert_eq!(w.len(), 2);
        assert_eq!(w.pages[0], (0, b("a")));
        assert_eq!(w.pages[1], (1, b("bb")));
    }

    #[test]
    fn apply_and_digest() {
        let mut o = PagedObject::new(4);
        let d0 = o.digest();
        o.apply(&PartialWrite::new([(2, b("hello"))]));
        assert_eq!(o.page(2), Some(&b("hello")));
        assert_eq!(o.page(0), Some(&Bytes::new()));
        assert_ne!(o.digest(), d0);
        // Out-of-range pages are ignored.
        o.apply(&PartialWrite::new([(9, b("zz"))]));
        assert_eq!(o.n_pages(), 4);
        assert!(o.page(9).is_none());
    }

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = PagedObject::new(2);
        a.apply(&PartialWrite::new([(0, b("x")), (1, b("y"))]));
        let mut c = PagedObject::new(2);
        c.apply(&PartialWrite::new([(0, b("y")), (1, b("x"))]));
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut o = PagedObject::new(3);
        o.apply(&PartialWrite::new([(1, b("data"))]));
        let snap = o.snapshot();
        let mut other = PagedObject::new(3);
        other.restore(snap);
        assert_eq!(o, other);
        assert_eq!(o.digest(), other.digest());
    }

    #[test]
    fn log_serves_contiguous_suffix() {
        let mut log = WriteLog::new(10);
        for v in 1..=5 {
            log.push(LogEntry {
                version: v,
                write: PartialWrite::new([(0, b("x"))]),
            });
        }
        let ups = log.updates_since(2).unwrap();
        assert_eq!(
            ups.iter().map(|e| e.version).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        assert_eq!(log.updates_since(5).unwrap(), vec![]);
        assert_eq!(log.updates_since(0).unwrap().len(), 5);
    }

    #[test]
    fn log_trims_and_reports_gaps() {
        let mut log = WriteLog::new(3);
        for v in 1..=6 {
            log.push(LogEntry {
                version: v,
                write: PartialWrite::new([]),
            });
        }
        assert_eq!(log.len(), 3); // versions 4, 5, 6
        assert!(log.updates_since(1).is_none(), "needs v2 which was trimmed");
        assert!(log.updates_since(2).is_none());
        assert!(log.updates_since(3).is_some(), "v4.. is intact");
        assert_eq!(log.updates_since(3).unwrap().len(), 3);
    }

    #[test]
    fn empty_log_has_no_updates() {
        let log = WriteLog::new(4);
        assert!(log.updates_since(0).is_none());
        assert!(log.is_empty());
    }
}
