//! Protocol messages, operation identifiers, and client-facing types.

use crate::store::{LogEntry, PartialWrite};
use bytes::Bytes;
use coterie_quorum::NodeId;

/// Globally unique operation identifier: the coordinating node plus a
/// durable per-node sequence number (so ids stay unique across crashes).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OpId {
    /// Coordinating node.
    pub node: NodeId,
    /// Durable per-node sequence number.
    pub seq: u64,
}

/// The per-replica state tuple exchanged in permission and epoch-check
/// responses — the paper's
/// `(node, version, dversion, stale, elist, enumber)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateTuple {
    /// Responding node.
    pub node: NodeId,
    /// Replica version number.
    pub version: u64,
    /// Desired version number (meaningful only when `stale`).
    pub dversion: u64,
    /// Stale-data flag.
    pub stale: bool,
    /// The responder's current epoch list.
    pub elist: Vec<NodeId>,
    /// The responder's epoch number.
    pub enumber: u64,
    /// The good-replica list recorded by the most recent write this
    /// replica participated in (§4.1's safety-threshold extension: "the
    /// list of 'good' replicas is recorded in every node participating in
    /// a write operation").
    pub last_good: Vec<NodeId>,
    /// True when the replica lock is held exclusively by some operation.
    /// Stale-rejoin recovery reads this as a hazard signal: every required
    /// participant of an in-flight write stays exclusively locked from the
    /// permission grant until the 2PC outcome, so a quorum of lock-free,
    /// unprepared responders proves no write the poller voted for before
    /// losing its journal can still commit (see [`crate::rejoin`]).
    pub wlocked: bool,
    /// The version a durably prepared, still undecided 2PC action would
    /// establish if committed (`new_version` for updates, the desired
    /// version for stale-markings and epoch installs); `None` without a
    /// prepared slot. Lets a rejoining replica bound the one possible
    /// in-flight write exactly instead of over-approximating.
    pub prepared_version: Option<u64>,
}

/// The payload of a two-phase-commit `Prepare`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Apply `writes` in order and move to `new_version`; the recipient is
    /// one of the "good" (current) replicas. `stale` is the piggybacked
    /// list of nodes being marked stale, which the recipient must
    /// asynchronously bring up to date (the paper's update-propagation
    /// trigger).
    ///
    /// A batch of more than one write is the coordinator-side write
    /// batching optimization (DESIGN.md §10): several coalesced client
    /// writes commit under one lock/2PC round, each producing its own
    /// version — write `i` of the batch establishes version
    /// `new_version - writes.len() + 1 + i`, so the log keeps one entry
    /// per client write and propagation contiguity is unchanged.
    DoUpdate {
        /// The (partial) writes to apply, in commit order.
        writes: Vec<PartialWrite>,
        /// Version the replica reaches after applying the whole batch.
        new_version: u64,
        /// Nodes being marked stale by this write.
        stale: Vec<NodeId>,
        /// The full good list of this write (recorded durably by every
        /// participant so later coordinators can find extra current
        /// replicas — the paper's safety-threshold mechanism).
        good: Vec<NodeId>,
        /// Synchronous-reconciliation base: a full snapshot (pages and its
        /// version) the recipient must restore *before* applying `write`.
        /// Only the write-all-current baseline uses this — it is exactly
        /// the "synchronously bringing the obsolete replicas up-to-date"
        /// cost the paper's stale-marking design avoids.
        base: Option<(Vec<Bytes>, u64)>,
    },
    /// Become stale with the given desired version number.
    MarkStale {
        /// The version the current replicas will have after this write; the
        /// recipient may only accept propagation from replicas at or above
        /// this version.
        desired_version: u64,
    },
    /// Install a new epoch (the epoch-checking operation's atomic commit).
    NewEpoch {
        /// Members of the new epoch, in name order.
        list: Vec<NodeId>,
        /// The new epoch number.
        enumber: u64,
        /// Members holding the most recent version.
        good: Vec<NodeId>,
        /// Members being marked stale.
        stale: Vec<NodeId>,
        /// Desired version for the stale members (`max-version`).
        desired_version: u64,
    },
}

/// Propagation offer replies (the paper's three-way response).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PropReply {
    /// Propagation already underway with another source.
    AlreadyRecovering,
    /// The target is not stale (or cannot use this source).
    IAmCurrent,
    /// Propagation may proceed; the target is locked and reports its
    /// current version so the source can ship just the missing suffix.
    Permitted {
        /// The target replica's current version.
        target_version: u64,
    },
}

/// Propagation payload: either the missing log suffix or a full snapshot.
#[derive(Clone, Debug)]
pub enum PropPayload {
    /// Replay these log entries in order.
    Updates {
        /// Log entries with versions contiguous from the target's version.
        entries: Vec<LogEntry>,
    },
    /// Replace the object wholesale.
    Snapshot {
        /// Page contents.
        pages: Vec<Bytes>,
        /// Version of the snapshot.
        version: u64,
    },
}

/// All messages exchanged between replicas.
#[derive(Clone, Debug)]
pub enum Msg {
    /// Request permission (and an exclusive lock) for a write.
    WriteReq {
        /// The requesting operation.
        op: OpId,
    },
    /// Request permission (and a shared lock) for a read.
    ReadReq {
        /// The requesting operation.
        op: OpId,
    },
    /// Epoch-check poll (no lock taken).
    EpochCheckReq {
        /// The epoch-check operation.
        op: OpId,
    },
    /// Reply to `WriteReq`/`ReadReq`/`EpochCheckReq` with the replica's
    /// state tuple. `granted` is false when the lock could not be taken
    /// (no-wait locking; the coordinator backs off and retries).
    StateResp {
        /// The operation being answered.
        op: OpId,
        /// Whether the lock was granted (always true for epoch checks).
        granted: bool,
        /// The replica's state tuple.
        state: StateTuple,
    },
    /// Release a lock held by `op` (abort or read completion).
    Release {
        /// The operation whose lock to release.
        op: OpId,
    },
    /// Two-phase commit: prepare `action`.
    Prepare {
        /// The coordinating operation.
        op: OpId,
        /// The action to prepare.
        action: Action,
        /// True when the recipient was *not* locked during a permission
        /// phase and may acquire the replica lock at prepare time: §4.1
        /// safety-threshold extras ("no permission ... is needed") and
        /// epoch installs (whose poll is lock-free). Required write
        /// participants get `false`: their prepare must find the
        /// permission-phase lock still held, so a lease expiry — or a
        /// crash that forgot the grant — becomes a no-vote instead of
        /// silently re-anchoring the write (see [`crate::rejoin`]).
        extra: bool,
    },
    /// Two-phase commit: participant vote.
    Vote {
        /// The operation voted on.
        op: OpId,
        /// True to commit.
        yes: bool,
    },
    /// Two-phase commit: coordinator decision.
    Decision {
        /// The decided operation.
        op: OpId,
        /// True to commit, false to abort.
        commit: bool,
        /// Pipelined 2PC (DESIGN.md §10): on commit, hand the replica's
        /// exclusive lock to this follow-up operation instead of releasing
        /// it. The coordinator sends the chained round's `Prepare` in the
        /// same breath, skipping a fresh permission phase; a participant
        /// that cannot transfer (the lock moved on) simply releases, and
        /// the chained prepare's lock check votes no — safety never rests
        /// on the handoff succeeding.
        chain: Option<OpId>,
    },
    /// A recovered participant asking the coordinator for the outcome of a
    /// prepared-but-undecided operation.
    DecisionQuery {
        /// The in-doubt operation.
        op: OpId,
    },
    /// Read phase 2: fetch the object from the chosen current replica.
    FetchReq {
        /// The reading operation.
        op: OpId,
    },
    /// Reply to `FetchReq`.
    FetchResp {
        /// The reading operation.
        op: OpId,
        /// Version of the returned snapshot.
        version: u64,
        /// Page contents.
        pages: Vec<Bytes>,
    },
    /// Propagation offer from a good replica (the paper's
    /// `propagation-offer` with the source's version number).
    PropOffer {
        /// Identifier of this propagation attempt.
        prop: OpId,
        /// The source replica's version.
        version: u64,
    },
    /// Reply to a propagation offer.
    PropResp {
        /// The propagation attempt.
        prop: OpId,
        /// The three-way reply.
        reply: PropReply,
    },
    /// The propagation data transfer.
    PropData {
        /// The propagation attempt.
        prop: OpId,
        /// Missing updates or a snapshot.
        payload: PropPayload,
        /// The source's version (the target's version after applying).
        source_version: u64,
    },
    /// Target acknowledges (or rejects) the propagation transfer.
    PropAck {
        /// The propagation attempt.
        prop: OpId,
        /// Whether the transfer was applied.
        ok: bool,
    },
    /// Source abandons a permitted propagation (e.g. its own replica is
    /// busy); the target unlocks.
    PropCancel {
        /// The propagation attempt.
        prop: OpId,
    },
    /// Bully election: a challenge to all higher-named nodes.
    Election {
        /// Challenge round id.
        round: OpId,
    },
    /// Bully election: "I am alive and higher; defer to me."
    ElectionAlive {
        /// The challenged round.
        round: OpId,
    },
    /// Bully election: the sender announces itself as the epoch-check
    /// coordinator.
    Coordinator,
    /// A replica recovering from a quarantined journal polls its peers for
    /// their state tuples to learn a safe desired version (see
    /// [`crate::rejoin`]).
    RejoinQuery {
        /// The rejoin attempt.
        op: OpId,
    },
    /// Reply to a `RejoinQuery`.
    RejoinInfo {
        /// The rejoin attempt being answered.
        op: OpId,
        /// The responder's state tuple.
        state: StateTuple,
    },
}

impl Msg {
    /// Coarse message-class label used by the traffic metrics.
    pub fn class(&self) -> MsgClass {
        match self {
            Msg::WriteReq { .. }
            | Msg::ReadReq { .. }
            | Msg::StateResp { .. }
            | Msg::Release { .. } => MsgClass::Permission,
            Msg::Prepare { .. }
            | Msg::Vote { .. }
            | Msg::Decision { .. }
            | Msg::DecisionQuery { .. } => MsgClass::Commit,
            Msg::FetchReq { .. } | Msg::FetchResp { .. } => MsgClass::Fetch,
            Msg::PropOffer { .. }
            | Msg::PropResp { .. }
            | Msg::PropData { .. }
            | Msg::PropAck { .. }
            | Msg::PropCancel { .. } => MsgClass::Propagation,
            Msg::EpochCheckReq { .. }
            | Msg::Election { .. }
            | Msg::ElectionAlive { .. }
            | Msg::Coordinator
            | Msg::RejoinQuery { .. }
            | Msg::RejoinInfo { .. } => MsgClass::EpochCheck,
        }
    }
}

/// Coarse message classes for traffic accounting.
///
/// `Ord` follows declaration order; stats maps key on it, and those maps
/// must iterate deterministically for the engine's digest/journal contract.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MsgClass {
    /// Quorum permission traffic (requests, state responses, releases).
    Permission,
    /// Two-phase-commit traffic.
    Commit,
    /// Read data fetches.
    Fetch,
    /// Update propagation traffic.
    Propagation,
    /// Epoch checking traffic.
    EpochCheck,
}

impl MsgClass {
    /// Every class, in `Ord` order — for exhaustive metric enumeration.
    pub const ALL: [MsgClass; 5] = [
        MsgClass::Permission,
        MsgClass::Commit,
        MsgClass::Fetch,
        MsgClass::Propagation,
        MsgClass::EpochCheck,
    ];
}

/// Client-facing request, injected at a coordinator node.
#[derive(Clone, Debug)]
pub enum ClientRequest {
    /// Read the object.
    Read {
        /// Client-chosen request id, echoed in the response.
        id: u64,
    },
    /// Apply a partial write.
    Write {
        /// Client-chosen request id, echoed in the response.
        id: u64,
        /// The pages to update.
        write: PartialWrite,
    },
}

/// Why an operation failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailReason {
    /// Could not assemble a quorum of reachable replicas.
    NoQuorum,
    /// A quorum responded but no sufficiently current replica was reachable
    /// (`max-dversion > max-version`).
    NoCurrentReplica,
    /// Lock contention persisted through all retries.
    Contention,
    /// The two-phase commit aborted and the retry budget is exhausted.
    CommitFailed,
}

/// Client-facing response / observable protocol event.
#[derive(Clone, Debug)]
pub enum ProtocolEvent {
    /// A read completed.
    ReadOk {
        /// Echoed request id.
        id: u64,
        /// Version read.
        version: u64,
        /// Digest of the returned object (for the consistency checker).
        digest: u64,
        /// The page contents.
        pages: Vec<Bytes>,
    },
    /// A write committed.
    WriteOk {
        /// Echoed request id.
        id: u64,
        /// The version the write produced.
        version: u64,
        /// How many replicas the coordinator applied/marked in the quorum.
        replicas_touched: usize,
        /// How many replicas were marked stale.
        marked_stale: usize,
    },
    /// An operation failed.
    Failed {
        /// Echoed request id.
        id: u64,
        /// Why.
        reason: FailReason,
    },
    /// A new epoch was installed at this node.
    EpochInstalled {
        /// The epoch number.
        enumber: u64,
        /// The members.
        members: Vec<NodeId>,
    },
    /// This node finished propagating updates to a stale replica.
    Propagated {
        /// The replica brought up to date.
        target: NodeId,
        /// The version it reached.
        version: u64,
    },
    /// A synchronous reconciliation was needed (write-all-current baseline
    /// only; the paper's protocol never does this).
    SyncReconciliation {
        /// Nodes reconciled synchronously.
        targets: usize,
    },
    /// This node completed the stale-rejoin handshake after a quarantined
    /// journal: a write quorum of peers answered, and the replica now
    /// waits (stale, with a safe desired version) for propagation repair.
    Rejoined {
        /// The desired version adopted from the quorum's answers.
        dversion: u64,
        /// The epoch the replica rejoined into.
        enumber: u64,
    },
}
