//! Stale-rejoin recovery after a quarantined journal.
//!
//! When replay finds damage *inside* the acknowledged record prefix (a
//! [`ReplayVerdict::Quarantined`](crate::engine::ReplayVerdict)), the
//! replica's durable state has silently lost a suffix of acknowledged
//! changes: 2PC votes it promised, decisions it recorded, writes it
//! applied. Booting normally would violate the protocol's core assumption
//! that durable state is never un-persisted. Instead of panicking — or
//! worse, trusting the truncated state — the replica turns the damage into
//! the one failure mode the paper already handles: **being stale**.
//!
//! On [`Input::BootQuarantined`](crate::engine::Input) the replica:
//!
//! 1. marks itself stale, drops any replayed prepared-transaction slot
//!    (its vote may or may not have reached the coordinator; either way it
//!    can no longer honor it), fences possibly-lost coordinator decisions
//!    (see [`Durable::quarantine_fence`]), and skips its op counter far
//!    past any id the lost suffix could have allocated;
//! 2. polls all peers with [`Msg::RejoinQuery`] and collects
//!    [`Msg::RejoinInfo`] state tuples until the responders include a
//!    **write quorum** of the newest epoch seen — the same quorum test the
//!    write protocol uses, so every committed write intersects the
//!    responses;
//! 3. adopts the newest epoch among the answers and a *desired version*
//!    high enough that propagation can only repair it from a replica that
//!    has seen every write the lost suffix might have acknowledged —
//!    **including a 2PC prepare the suffix voted for that has not decided
//!    yet**. The responders' lock and prepared-slot reports make one poll
//!    sufficient: prepares go out only after the whole permission round is
//!    granted, so every required participant of such a write has been
//!    exclusively locked since before this replica crashed, and answers
//!    the poll locked, prepared, or already showing the committed result
//!    (required participants can never silently re-acquire an expired
//!    lock at prepare time — see [`Msg::Prepare`]'s `extra` flag);
//! 4. clears the rejoin limbo and lets the ordinary §4.2 propagation
//!    machinery (kicked proactively by the current replicas that answered
//!    the poll, and by the next epoch check) bring it back to current.
//!
//! While the handshake is in flight the replica is in *rejoin limbo*: it
//! refuses propagation offers (its desired version is not yet known, so it
//! cannot tell a safe source from an obsolete one), votes no on every
//! 2PC prepare (its recovered state must not anchor new writes), refuses
//! read and write permission requests, and leaves epoch checks and peer
//! rejoin polls unanswered — its state tuple must not enter anyone's
//! classification, because a quorum whose only intersection with a lost
//! write's quorum is this amnesiac replica would commit duplicate versions
//! or serve stale reads.
//!
//! The handshake itself must survive crashes: a crash during limbo can
//! replay *clean* (the quarantined boot's own persisted delta healed the
//! journal), and a normal boot knows nothing about the interrupted poll —
//! the volatile [`RejoinState`] is gone. [`Durable::rejoin_pending`] closes
//! that hole: set by the quarantined boot, cleared only when the handshake
//! completes, and every boot that sees it re-enters the poll.

use std::collections::BTreeMap;

use coterie_quorum::{NodeId, QuorumKind};

use crate::classify::Classified;
use crate::config::Mode;
use crate::engine::trace::TraceEvent;
use crate::msg::{Msg, OpId, ProtocolEvent, StateTuple};
use crate::node::{NodeCtx, ReplicaNode, Timer};

#[allow(unused_imports)] // doc links
use crate::node::Durable;

/// How far the op counter jumps over ids the lost journal suffix could
/// have allocated. The suffix length is bounded by the journal's record
/// count, which is far below this for any conceivable run.
const OP_COUNTER_SKIP: u64 = 1_000_000;

/// In-flight rejoin handshake state (volatile; restarting it after a
/// crash is always safe).
#[derive(Clone, Debug)]
pub struct RejoinState {
    /// Id of this rejoin attempt (poll responses are matched against it).
    pub op: OpId,
    /// State tuples collected so far, by responder.
    pub responses: BTreeMap<NodeId, StateTuple>,
}

impl ReplicaNode {
    /// Boot after the host quarantined the journal: enter stale-rejoin
    /// (see the module docs for the full contract).
    pub(crate) fn handle_boot_quarantined(&mut self, ctx: &mut NodeCtx<'_>) {
        // The replayed prefix may hold a prepared slot whose vote is part
        // of the lost suffix; we can no longer keep the promise either
        // way. Dropping it is safe: if the coordinator committed, this
        // replica is repaired by propagation like any stale replica.
        self.durable.prepared = None;
        self.durable.stale = true;
        // Durable so that a crash during the handshake cannot orphan it:
        // the quarantined boot's own delta may heal the journal, making the
        // next replay *clean*, and a normal boot must still know the
        // handshake never finished (see [`Durable::rejoin_pending`]).
        self.durable.rejoin_pending = true;
        // Fence decision queries for every op id the lost suffix could
        // have coordinated, then move the counter past the fence so new
        // ops are never confused with amnesiac ones.
        self.durable.quarantine_fence = self.durable.op_counter + OP_COUNTER_SKIP;
        self.durable.op_counter = self.durable.quarantine_fence;
        if matches!(self.config.mode, Mode::Dynamic { .. }) {
            self.arm_epoch_tick(ctx);
        }
        self.start_rejoin(ctx);
    }

    /// Starts (or restarts) the rejoin poll. Also called from a *clean*
    /// boot when [`Durable::rejoin_pending`] shows an earlier handshake
    /// was interrupted by a crash.
    pub(crate) fn start_rejoin(&mut self, ctx: &mut NodeCtx<'_>) {
        let op = self.next_op();
        ctx.trace(TraceEvent::RejoinStart { op });
        self.vol.rejoin = Some(RejoinState {
            op,
            responses: BTreeMap::new(),
        });
        let peers: Vec<NodeId> = self
            .all_nodes()
            .into_iter()
            .filter(|&n| n != self.me)
            .collect();
        ctx.multicast(peers, Msg::RejoinQuery { op });
        self.arm_rejoin_retry(ctx);
    }

    /// Serves a peer's rejoin poll: answer with our state tuple, and — if
    /// we are current — proactively start propagating to the rejoiner
    /// (it is stale by construction; waiting for the next epoch check
    /// would leave it degraded for a full check period).
    pub(crate) fn srv_rejoin_query(&mut self, ctx: &mut NodeCtx<'_>, from: NodeId, op: OpId) {
        // A replica in rejoin limbo stays silent: its own tuple is still
        // amnesiac, and counting it toward the asker's write quorum could
        // finalize a rejoin without reaching any replica that knows the
        // lost writes. The asker's retry timer re-polls us once we have
        // finished our own handshake.
        if self.in_rejoin_limbo() {
            return;
        }
        let state = self.state_tuple();
        ctx.send(from, Msg::RejoinInfo { op, state });
        if !self.durable.stale {
            self.start_propagation(ctx, coterie_quorum::NodeSet::singleton(from));
        }
    }

    /// Collects a rejoin answer; finalizes once the responders include a
    /// write quorum of the newest epoch seen.
    pub(crate) fn on_rejoin_info(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        from: NodeId,
        op: OpId,
        state: StateTuple,
    ) {
        let responses = match &mut self.vol.rejoin {
            Some(rejoin) if rejoin.op == op => {
                rejoin.responses.insert(from, state);
                rejoin.responses.clone()
            }
            _ => return,
        };
        let rule = self.config.rule.clone();
        let Some(classified) = Classified::evaluate(
            rule.as_ref(),
            &mut self.vol.plans,
            &responses,
            QuorumKind::Write,
        ) else {
            return;
        };
        if !classified.has_quorum {
            return;
        }
        self.finish_rejoin(ctx, &classified, &responses);
    }

    /// A write quorum answered: adopt the newest epoch, raise the desired
    /// version to cover every write the responses prove or could still
    /// commit, and leave limbo. From here the replica is an ordinary
    /// stale node that §4.2 propagation repairs.
    fn finish_rejoin(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        classified: &Classified,
        responses: &BTreeMap<NodeId, StateTuple>,
    ) {
        self.vol.rejoin = None;
        self.durable.rejoin_pending = false;
        // Adopt the maximum-epoch (enumber, elist) pair verbatim from a
        // responder: copying an existing pair preserves the epoch-safety
        // invariant (equal numbers ⇒ equal lists).
        if classified.enumber > self.durable.enumber {
            self.durable.enumber = classified.enumber;
            self.durable.elist = classified.view.members().to_vec();
        }
        // Safe desired version, in two parts.
        //
        // (a) Committed writes: every committed write's quorum intersects
        // the responding write quorum, so some responder holds its version
        // (non-stale), was marked stale with at least it as dversion, or
        // still carries it in an undecided prepared slot.
        //
        // (b) A write this replica's lost suffix *voted for* but whose
        // decision is still pending: prepares go out only after the whole
        // permission round is granted, so every required participant of
        // such a write has been exclusively locked since before this
        // replica crashed, and answers the poll locked, prepared, or
        // already showing the committed result. A lock with no prepared
        // slot hides the version, but at most one write can hold a full
        // quorum of locks at a time and it commits at exactly one past
        // the committed maximum, so adding one covers it. Committed
        // versions are gap-free, so an over-approximated dversion is
        // healed by the next committed write's propagation.
        let committed = classified
            .max_version
            .unwrap_or(0)
            .max(classified.max_dversion);
        let prepared = responses
            .values()
            .filter_map(|s| s.prepared_version)
            .max()
            .unwrap_or(0);
        let lock_hazard = responses
            .values()
            .any(|s| s.wlocked && s.prepared_version.is_none());
        let target = committed.max(prepared) + u64::from(lock_hazard);
        self.durable.dversion = self.durable.dversion.max(target);
        ctx.trace(TraceEvent::RejoinDone {
            dversion: self.durable.dversion,
            enumber: self.durable.enumber,
        });
        ctx.output(ProtocolEvent::Rejoined {
            dversion: self.durable.dversion,
            enumber: self.durable.enumber,
        });
    }

    /// Retry timer: re-poll the peers that have not answered yet.
    pub(crate) fn on_rejoin_retry(&mut self, ctx: &mut NodeCtx<'_>) {
        let (op, answered) = match &self.vol.rejoin {
            Some(rejoin) => (rejoin.op, rejoin.responses.clone()),
            None => return,
        };
        let silent: Vec<NodeId> = self
            .all_nodes()
            .into_iter()
            .filter(|&n| n != self.me && !answered.contains_key(&n))
            .collect();
        ctx.multicast(silent, Msg::RejoinQuery { op });
        self.arm_rejoin_retry(ctx);
    }

    fn arm_rejoin_retry(&mut self, ctx: &mut NodeCtx<'_>) {
        let base = self.config.collect_timeout * 4;
        let delay = base + self.jitter(ctx, base);
        ctx.set_timer(delay, Timer::RejoinRetry);
    }

    /// True while the rejoin handshake is in flight (limbo): permission
    /// requests, propagation offers, and 2PC prepares must be refused, and
    /// epoch checks and peer rejoin polls go unanswered — the replica's
    /// tuple must not enter anyone's classification until its desired
    /// version carries the rejoin bound. The durable flag is checked too
    /// so no window exists between replay and the boot step re-arming the
    /// volatile handshake state.
    pub(crate) fn in_rejoin_limbo(&self) -> bool {
        self.vol.rejoin.is_some() || self.durable.rejoin_pending
    }
}
