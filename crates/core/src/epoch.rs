//! The epoch checking protocol (§4.3) and the initiator policy.
//!
//! Epoch checking polls *all* replicas, and — if the responders include a
//! write quorum over the newest epoch and the response set differs from
//! that epoch — atomically installs the responder set as the new epoch,
//! marking out-of-date members stale and triggering propagation.
//!
//! **Initiator selection.** The paper suggests electing a site responsible
//! for initiating epoch checks, deferring to Garcia-Molina's election
//! protocols \[7\]. Both options are implemented (see
//! [`crate::election::InitiatorPolicy`]): the default election-free
//! rank-stagger scheme — every node ticks with a period growing with its
//! rank and initiates only when no recent check was observed — and the
//! literal bully election of \[7\].

use crate::classify::Classified;
use crate::config::Mode;
use crate::engine::metrics::keys;
use crate::engine::trace::TraceEvent;
use crate::msg::{Action, Msg, OpId, StateTuple};
use crate::node::{NodeCtx, ReplicaNode, Timer};
use coterie_base::{SimDuration, TimerId};
use coterie_quorum::{NodeId, NodeSet, QuorumKind};
use std::collections::BTreeMap;

/// Phase of a coordinated epoch check.
#[derive(Clone, Debug)]
pub enum EPhase {
    /// Polling all replicas.
    Collect,
    /// Two-phase commit of the new epoch.
    Voting {
        /// New epoch members (the participants).
        participants: Vec<NodeId>,
        /// Yes votes so far.
        yes: NodeSet,
        /// The action being committed.
        action: Action,
        /// Vote timeout.
        timer: TimerId,
    },
}

/// Volatile state of one epoch check.
#[derive(Clone, Debug)]
pub struct EpochCoordinator {
    /// Operation id.
    pub op: OpId,
    /// Phase.
    pub phase: EPhase,
    /// State responses by node.
    pub responses: BTreeMap<NodeId, StateTuple>,
    /// Unreachable nodes.
    pub failed: NodeSet,
    /// All nodes polled.
    pub polled: NodeSet,
    /// Collection timeout.
    pub collect_timer: Option<TimerId>,
}

impl EpochCoordinator {
    fn answered(&self) -> NodeSet {
        NodeSet::from_iter(self.responses.keys().copied()).union(self.failed)
    }

    fn collect_done(&self) -> bool {
        self.polled.is_subset_of(self.answered())
    }
}

impl ReplicaNode {
    /// Arms the next epoch tick. The delay is
    /// `check_period * (1 + rank)` plus jitter, where `rank` is this node's
    /// position in its epoch list (nodes outside their own epoch list use
    /// the list length — they still tick, so a partitioned-away minority
    /// keeps probing).
    pub(crate) fn arm_epoch_tick(&mut self, ctx: &mut NodeCtx<'_>) {
        let Mode::Dynamic { check_period } = self.config.mode else {
            return;
        };
        let rank = self
            .durable
            .elist
            .iter()
            .position(|&n| n == self.me)
            .unwrap_or(self.durable.elist.len()) as u64;
        let jitter = self.jitter(ctx, check_period / 4);
        let delay = check_period * (1 + rank) + jitter;
        ctx.set_timer(delay, Timer::EpochTick);
    }

    /// Periodic tick: initiate an epoch check unless someone else has
    /// recently. Under the bully policy, only the elected coordinator
    /// initiates; silence triggers an election instead.
    pub(crate) fn on_epoch_tick(&mut self, ctx: &mut NodeCtx<'_>) {
        let Mode::Dynamic { check_period } = self.config.mode else {
            return;
        };
        let recent = self
            .vol
            .last_epoch_check_seen
            .is_some_and(|t| ctx.now().since(t) < check_period);
        if !recent && !self.vol.epoch_check_active {
            if self.should_initiate_check() {
                self.start_epoch_check(ctx);
            } else {
                self.maybe_start_election(ctx);
            }
        }
        self.arm_epoch_tick(ctx);
    }

    /// `CheckEpoch`: poll every replica.
    pub(crate) fn start_epoch_check(&mut self, ctx: &mut NodeCtx<'_>) {
        let op = self.next_op();
        ctx.trace(TraceEvent::EpochCheckStart {
            op,
            enumber: self.durable.enumber,
        });
        self.vol.epoch_check_active = true;
        self.vol.last_epoch_check_seen = Some(ctx.now());
        let all = NodeSet::from_iter(self.all_nodes());
        let timeout = self.config.collect_timeout;
        let timer = ctx.set_timer(timeout, Timer::Collect { op });
        let ec = EpochCoordinator {
            op,
            phase: EPhase::Collect,
            responses: BTreeMap::new(),
            failed: NodeSet::new(),
            polled: all,
            collect_timer: Some(timer),
        };
        for node in all.iter() {
            ctx.send(node, Msg::EpochCheckReq { op });
        }
        self.vol.epochs.insert(op, ec);
    }

    /// A state response for an epoch check.
    pub(crate) fn epoch_state_resp(&mut self, ctx: &mut NodeCtx<'_>, op: OpId, state: StateTuple) {
        let Some(ec) = self.vol.epochs.get_mut(&op) else {
            return;
        };
        if !matches!(ec.phase, EPhase::Collect) {
            return;
        }
        ec.responses.insert(state.node, state);
        if ec.collect_done() {
            self.evaluate_epoch_check(ctx, op);
        }
    }

    /// `RPC.CallFailed` for an epoch-check poll.
    pub(crate) fn on_epoch_peer_failed(&mut self, ctx: &mut NodeCtx<'_>, op: OpId, to: NodeId) {
        let Some(ec) = self.vol.epochs.get_mut(&op) else {
            return;
        };
        if !matches!(ec.phase, EPhase::Collect) {
            return;
        }
        ec.failed.insert(to);
        if ec.collect_done() {
            self.evaluate_epoch_check(ctx, op);
        }
    }

    /// Poll timeout: treat silent nodes as failed.
    pub(crate) fn epoch_collect_timeout(&mut self, ctx: &mut NodeCtx<'_>, op: OpId) {
        let Some(ec) = self.vol.epochs.get_mut(&op) else {
            return;
        };
        if !matches!(ec.phase, EPhase::Collect) {
            return;
        }
        ec.collect_timer = None;
        let silent = ec.polled.difference(ec.answered());
        ec.failed = ec.failed.union(silent);
        self.evaluate_epoch_check(ctx, op);
    }

    /// The paper's `CheckEpoch` decision logic.
    fn evaluate_epoch_check(&mut self, ctx: &mut NodeCtx<'_>, op: OpId) {
        let Some(ec) = self.vol.epochs.get_mut(&op) else {
            return;
        };
        if let Some(t) = ec.collect_timer.take() {
            ctx.cancel_timer(t);
        }
        let Some(c) = Classified::evaluate(
            &*self.config.rule,
            &mut self.vol.plans,
            &ec.responses,
            QuorumKind::Write,
        ) else {
            self.finish_epoch_check(ctx, op);
            return;
        };
        // "if coterie-rule(elist_m, {node_1..node_k})":
        if !c.has_quorum {
            self.finish_epoch_check(ctx, op);
            return;
        }
        // "NEW-EPOCH := {node_1..node_k}; if NEW-EPOCH != elist_m":
        let mut new_epoch: Vec<NodeId> = ec.responses.keys().copied().collect();
        new_epoch.sort_unstable();
        if new_epoch == c.view.members() {
            self.finish_epoch_check(ctx, op);
            return;
        }
        // "if max-version >= max-dversion": a current replica must exist,
        // which also guarantees a max version is known.
        let desired_version = match c.max_version {
            Some(v) if c.has_current_replica() => v,
            _ => {
                self.finish_epoch_check(ctx, op);
                return;
            }
        };
        let enumber = c.enumber + 1;
        // GOOD / STALE partition of the *new epoch*.
        let good: Vec<NodeId> = c
            .good
            .iter()
            .copied()
            .filter(|n| new_epoch.contains(n))
            .collect();
        let stale: Vec<NodeId> = new_epoch
            .iter()
            .copied()
            .filter(|n| !good.contains(n))
            .collect();
        let action = Action::NewEpoch {
            list: new_epoch.clone(),
            enumber,
            good,
            stale,
            desired_version,
        };
        let timeout = self.config.vote_timeout;
        let timer = ctx.set_timer(timeout, Timer::Votes { op });
        // Re-borrow after set_timer ended the earlier borrow; nothing in
        // between can remove the entry within this same step.
        // lint:allow(panic): coordinator present at fn entry, step is atomic
        let ec = self.vol.epochs.get_mut(&op).expect("present");
        ec.phase = EPhase::Voting {
            participants: new_epoch.clone(),
            yes: NodeSet::new(),
            action: action.clone(),
            timer,
        };
        ctx.trace(TraceEvent::PrepareIssued { op });
        for &node in &new_epoch {
            ctx.send(
                node,
                Msg::Prepare {
                    op,
                    action: action.clone(),
                    // Epoch polls are lock-free; participants take the
                    // replica lock at prepare time.
                    extra: true,
                },
            );
        }
    }

    /// A 2PC vote for an epoch change.
    pub(crate) fn epoch_vote(&mut self, ctx: &mut NodeCtx<'_>, op: OpId, from: NodeId, yes: bool) {
        let Some(ec) = self.vol.epochs.get_mut(&op) else {
            return;
        };
        let EPhase::Voting {
            participants,
            yes: yes_set,
            timer,
            ..
        } = &mut ec.phase
        else {
            return;
        };
        if !yes {
            let timer = *timer;
            ctx.cancel_timer(timer);
            self.abort_epoch_commit(ctx, op);
            return;
        }
        yes_set.insert(from);
        if !participants.iter().all(|p| yes_set.contains(*p)) {
            return;
        }
        let (participants, timer) = (participants.clone(), *timer);
        ctx.cancel_timer(timer);
        self.durable.decisions.insert(op, true);
        for &p in &participants {
            ctx.send(
                p,
                Msg::Decision {
                    op,
                    commit: true,
                    chain: None,
                },
            );
        }
        self.stats.registry.inc(keys::EPOCH_CHANGES);
        self.finish_epoch_check(ctx, op);
    }

    /// Vote timeout for an epoch change.
    pub(crate) fn epoch_vote_timeout(&mut self, ctx: &mut NodeCtx<'_>, op: OpId) {
        if self
            .vol
            .epochs
            .get(&op)
            .is_some_and(|ec| matches!(ec.phase, EPhase::Voting { .. }))
        {
            self.abort_epoch_commit(ctx, op);
        }
    }

    fn abort_epoch_commit(&mut self, ctx: &mut NodeCtx<'_>, op: OpId) {
        let Some(ec) = self.vol.epochs.get(&op) else {
            return;
        };
        if let EPhase::Voting { participants, .. } = &ec.phase {
            let participants = participants.clone();
            self.durable.decisions.insert(op, false);
            for &p in &participants {
                ctx.send(
                    p,
                    Msg::Decision {
                        op,
                        commit: false,
                        chain: None,
                    },
                );
            }
        }
        self.finish_epoch_check(ctx, op);
        // Retry soon: an aborted epoch change usually lost a lock race
        // with a client write, and the failure that motivated it is still
        // unrepaired. One-shot so retry timers never accumulate.
        if !self.vol.epoch_retry_armed {
            self.vol.epoch_retry_armed = true;
            let delay =
                self.config.collect_timeout * 8 + self.jitter(ctx, self.config.collect_timeout * 8);
            ctx.set_timer(delay, Timer::EpochRetry);
        }
    }

    /// One-shot fast retry after an aborted epoch change.
    pub(crate) fn on_epoch_retry(&mut self, ctx: &mut NodeCtx<'_>) {
        self.vol.epoch_retry_armed = false;
        if matches!(self.config.mode, Mode::Dynamic { .. }) && !self.vol.epoch_check_active {
            self.start_epoch_check(ctx);
        }
    }

    fn finish_epoch_check(&mut self, ctx: &mut NodeCtx<'_>, op: OpId) {
        if let Some(mut ec) = self.vol.epochs.remove(&op) {
            if let Some(t) = ec.collect_timer.take() {
                ctx.cancel_timer(t);
            }
        }
        self.vol.epoch_check_active = false;
    }

    /// Helper for tests and the harness: the period until the *first* tick
    /// of the lowest-ranked node.
    pub fn min_epoch_tick(&self) -> Option<SimDuration> {
        match self.config.mode {
            Mode::Dynamic { check_period } => Some(check_period),
            Mode::Static => None,
        }
    }
}
