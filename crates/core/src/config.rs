//! Protocol configuration.

use crate::election::InitiatorPolicy;
use coterie_base::SimDuration;
use coterie_quorum::CoterieRule;
use std::sync::Arc;

/// Whether epochs adjust dynamically (the paper's contribution) or stay
/// fixed at the full replica set (the conventional static protocols).
#[derive(Clone, Debug)]
pub enum Mode {
    /// Dynamic epochs: the epoch-check protocol runs periodically and
    /// re-forms the epoch around detected failures and repairs.
    Dynamic {
        /// Target interval between epoch checks at the initiating node.
        check_period: SimDuration,
    },
    /// Static protocol: the epoch is the full replica set forever and epoch
    /// checking never runs. This is the conventional structured coterie
    /// protocol the paper improves on.
    Static,
}

/// How the coordinator handles replicas it cannot bring up to date inline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WriteMode {
    /// The paper's approach: apply the write to the current replicas of the
    /// quorum and mark the others stale (asynchronous propagation catches
    /// them up later).
    StaleMarking,
    /// The conventional approach the paper contrasts in §1: a write needs a
    /// write quorum of *current* replicas, so the coordinator must
    /// synchronously reconcile obsolete replicas whenever the current ones
    /// alone do not form a quorum.
    WriteAllCurrent,
}

/// All tunables of a replica node.
#[derive(Clone)]
pub struct ProtocolConfig {
    /// The coterie rule shared by all nodes.
    pub rule: Arc<dyn CoterieRule>,
    /// Total number of replicas (node names are `0..n_replicas`).
    pub n_replicas: usize,
    /// Pages per data item.
    pub n_pages: usize,
    /// Write-log retention (entries) for incremental propagation.
    pub log_cap: usize,
    /// Dynamic or static epoch handling.
    pub mode: Mode,
    /// Stale-marking (paper) or write-all-current (baseline).
    pub write_mode: WriteMode,
    /// How long a coordinator waits for permission-phase responses before
    /// treating silent nodes as failed.
    pub collect_timeout: SimDuration,
    /// How long a coordinator waits for 2PC votes.
    pub vote_timeout: SimDuration,
    /// How long a participant holds an unprepared lock before unilaterally
    /// releasing it (guards against crashed coordinators).
    pub lock_lease: SimDuration,
    /// Base backoff before a contention retry; jittered and scaled by the
    /// attempt number.
    pub retry_backoff: SimDuration,
    /// Retries after contention-induced failures before giving up.
    pub max_retries: u32,
    /// Maximum random delay a good replica waits before starting to
    /// propagate (staggers the duplicate offers the paper's design allows).
    pub propagation_jitter: SimDuration,
    /// Base delay between propagation attempts to an unreachable or busy
    /// target; actual retries back off exponentially in the per-target
    /// failed-attempt count (capped at 2⁶×) plus jitter.
    pub propagation_retry: SimDuration,
    /// Failed propagation attempts per target before the source gives up
    /// on it (the epoch-checking protocol owns long-term repair). Must be
    /// at least 1.
    pub max_prop_attempts: u32,
    /// Re-offer coalescing window (DESIGN.md §10): after a peer is brought
    /// current, a re-offer to it (the peer was re-marked stale by newer
    /// writes) waits out this window so one offer — carrying every delta
    /// committed meanwhile — replaces the one-offer-per-delta chatter a
    /// write burst would otherwise produce.
    pub propagation_coalesce: SimDuration,
    /// How long a recovered participant waits between decision queries for
    /// an in-doubt transaction.
    pub decision_retry: SimDuration,
    /// If true, propagation locks both replicas for the transfer, exactly
    /// as the paper's §4.2 pseudo-code does — and, as the paper admits,
    /// "the propagation can interfere with write operations". The default
    /// (false) is the optimization the paper sketches ("various logging
    /// techniques can be employed to avoid using the same lock"): log
    /// shipping without replica locks, fenced by version-contiguity checks
    /// and refused while a two-phase commit is touching the target.
    pub lock_propagation: bool,
    /// §4.1's safety threshold: when a committing write has fewer good
    /// (current) participants than this, the coordinator best-effort
    /// includes additional current replicas from the previous write's
    /// recorded good list — "no permission from these additional replicas
    /// is needed, so there are no additional rounds of message exchange".
    /// This provides "unconditional resilience to any number of
    /// simultaneous node failures less than the safety threshold". Zero
    /// disables the mechanism.
    pub safety_threshold: usize,
    /// Coordinator-side write batching (DESIGN.md §10): the maximum number
    /// of client writes coalesced into one lock/2PC round. While a write
    /// round is in flight at a coordinator, further client writes queue
    /// and commit together in the next round — one permission phase, one
    /// prepare/vote exchange, and one `DurableDelta` per batch instead of
    /// per write. `1` disables batching (every write runs its own round).
    /// Only the stale-marking write mode batches; the write-all-current
    /// baseline keeps its one-write rounds.
    pub max_write_batch: usize,
    /// Pipelined 2PC (DESIGN.md §10): the number of consecutive write
    /// rounds a coordinator may run under a single permission phase. After
    /// a round commits with more writes queued, the coordinator sends the
    /// decision with a lock-handoff (`chain`) and the next round's prepare
    /// in the same breath — round k+1's prepare is in flight while round
    /// k's commit decisions still are, instead of paying a fresh
    /// permission round-trip and racing the decision delivery. Bounded so
    /// reads and epoch prepares cannot starve behind an endless chain;
    /// `1` disables pipelining.
    pub pipeline_window: u32,
    /// Group commit of journal appends (DESIGN.md §10): how many
    /// `DurableDelta`s a journaling host may coalesce into one frame-flush
    /// (one header rewrite, one fsync on real storage) before it must
    /// flush. Effects that follow a buffered delta — client acks
    /// included — are deferred until the covering flush commits
    /// (ack-before-flush rule). `1` disables group commit (write-through,
    /// the pre-PR-6 behavior).
    pub group_commit_max_batch: usize,
    /// Group commit: the longest a buffered delta may wait for companions
    /// before the host flushes anyway. Bounds the extra latency group
    /// commit can add to any single operation.
    pub group_commit_max_delay: SimDuration,
    /// How the epoch-check initiator is chosen (§4.3 / \[7\]).
    pub initiator: InitiatorPolicy,
    /// Seed for the engine-owned deterministic RNG. Each node derives its
    /// stream as `seed ^ node_id`, so a cluster built from one config is
    /// fully determined by `(seed, input schedule)`.
    pub seed: u64,
}

impl std::fmt::Debug for ProtocolConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProtocolConfig")
            .field("rule", &self.rule.name())
            .field("n_replicas", &self.n_replicas)
            .field("n_pages", &self.n_pages)
            .field("mode", &self.mode)
            .field("write_mode", &self.write_mode)
            .finish_non_exhaustive()
    }
}

impl ProtocolConfig {
    /// A sensible default configuration for `n_replicas` nodes under the
    /// given coterie rule, with dynamic epochs checked every 10 s of
    /// simulated time.
    pub fn new(rule: Arc<dyn CoterieRule>, n_replicas: usize) -> Self {
        ProtocolConfig {
            rule,
            n_replicas,
            n_pages: 16,
            log_cap: 64,
            mode: Mode::Dynamic {
                check_period: SimDuration::from_secs(10),
            },
            write_mode: WriteMode::StaleMarking,
            collect_timeout: SimDuration::from_millis(50),
            vote_timeout: SimDuration::from_millis(50),
            lock_lease: SimDuration::from_millis(500),
            retry_backoff: SimDuration::from_millis(10),
            max_retries: 6,
            propagation_jitter: SimDuration::from_millis(20),
            propagation_retry: SimDuration::from_millis(200),
            max_prop_attempts: 10,
            propagation_coalesce: SimDuration::from_millis(5),
            decision_retry: SimDuration::from_millis(100),
            lock_propagation: false,
            safety_threshold: 2,
            max_write_batch: 1,
            pipeline_window: 1,
            group_commit_max_batch: 1,
            group_commit_max_delay: SimDuration::from_millis(2),
            initiator: InitiatorPolicy::RankStagger,
            seed: 0,
        }
    }

    /// Sets the engine RNG seed.
    pub fn rng_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Switches to the static (conventional) protocol.
    pub fn static_mode(mut self) -> Self {
        self.mode = Mode::Static;
        self
    }

    /// Switches to the write-all-current baseline.
    pub fn write_all_current(mut self) -> Self {
        self.write_mode = WriteMode::WriteAllCurrent;
        self
    }

    /// Sets the epoch-check period (implies dynamic mode).
    pub fn check_period(mut self, period: SimDuration) -> Self {
        self.mode = Mode::Dynamic {
            check_period: period,
        };
        self
    }

    /// Sets the number of pages per object.
    pub fn pages(mut self, n: usize) -> Self {
        self.n_pages = n;
        self
    }

    /// Sets the write-log retention.
    pub fn log_capacity(mut self, cap: usize) -> Self {
        self.log_cap = cap;
        self
    }

    /// Uses the paper's literal locking propagation (ablation baseline).
    pub fn locking_propagation(mut self) -> Self {
        self.lock_propagation = true;
        self
    }

    /// Caps failed propagation attempts per target (minimum 1).
    pub fn prop_attempts(mut self, n: u32) -> Self {
        self.max_prop_attempts = n.max(1);
        self
    }

    /// Sets the §4.1 safety threshold (0 disables).
    pub fn safety(mut self, threshold: usize) -> Self {
        self.safety_threshold = threshold;
        self
    }

    /// Uses the bully election \[7\] to choose the epoch-check initiator.
    pub fn bully_election(mut self) -> Self {
        self.initiator = InitiatorPolicy::Bully;
        self
    }

    /// Sets the write-batching cap (minimum 1; 1 disables batching).
    pub fn write_batch(mut self, n: usize) -> Self {
        self.max_write_batch = n.max(1);
        self
    }

    /// Sets the pipelined-2PC window (minimum 1; 1 disables pipelining).
    pub fn pipeline(mut self, window: u32) -> Self {
        self.pipeline_window = window.max(1);
        self
    }

    /// Sets the group-commit knobs (batch minimum 1; 1 disables).
    pub fn group_commit(mut self, max_batch: usize, max_delay: SimDuration) -> Self {
        self.group_commit_max_batch = max_batch.max(1);
        self.group_commit_max_delay = max_delay;
        self
    }
}
