//! The replica node: durable and volatile state. The event dispatch that
//! drives the protocol lives in [`crate::engine::step`] (the sans-I/O
//! [`ReplicaNode::step`] entry point); hosts adapt it to their substrate
//! (see the `simnet-host` feature).

use crate::config::ProtocolConfig;
use crate::election::ElectionState;
use crate::engine::metrics::{keys, MetricsRegistry};
use crate::engine::rng::Rng64;
use crate::engine::trace::TraceEvent;
use crate::epoch::EpochCoordinator;
use crate::locks::ReplicaLock;
use crate::msg::{Action, ClientRequest, MsgClass, OpId};
use crate::propagate::{IncomingProp, Propagator};
use crate::read::ReadCoordinator;
use crate::store::{PagedObject, WriteLog};
use crate::write::{BatchEntry, WriteCoordinator};
use coterie_base::{SimDuration, SimTime, TimerId};
use coterie_quorum::{NodeId, PlanCache, View};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Timers used by the protocol.
#[derive(Clone, Debug)]
pub enum Timer {
    /// Permission-phase collection timeout for a coordinated operation.
    Collect {
        /// The operation.
        op: OpId,
    },
    /// Two-phase-commit vote timeout.
    Votes {
        /// The operation.
        op: OpId,
    },
    /// Read fetch timeout.
    Fetch {
        /// The operation.
        op: OpId,
    },
    /// Retry a failed client request after contention backoff.
    RetryClient {
        /// Attempt number (1-based for the first retry).
        attempt: u32,
        /// The original request to re-run.
        request: ClientRequest,
    },
    /// Server-side lock lease expiry.
    LockLease {
        /// The holding operation.
        op: OpId,
    },
    /// Periodic check: should this node initiate an epoch check?
    EpochTick,
    /// One-shot fast retry after an aborted epoch change (does not re-arm
    /// the periodic chain).
    EpochRetry,
    /// Continue the propagation task.
    PropKick,
    /// Backoff expiry for a requeued (refused) write batch: release the
    /// held write queue and launch the next round.
    WriteQueueKick,
    /// A propagation offer or transfer went unanswered.
    PropTimeout {
        /// The propagation attempt.
        prop: OpId,
    },
    /// Target-side guard: a permitted propagation never completed.
    PropLease {
        /// The propagation attempt.
        prop: OpId,
    },
    /// A recovered participant re-asks the coordinator for an outcome.
    DecisionRetry {
        /// The in-doubt operation.
        op: OpId,
    },
    /// A quarantined replica re-polls peers that have not answered its
    /// rejoin query (see [`crate::rejoin`]).
    RejoinRetry,
    /// Bully election: answer/announcement window elapsed.
    ElectionTimeout {
        /// The challenge round.
        round: OpId,
    },
    /// Group-commit flush deadline. *Host-owned*: the engine never sets or
    /// handles this timer — journaling hosts arm it (with a reserved
    /// [`TimerId`]) when a delta starts waiting for companions and
    /// intercept its expiry to flush. It lives in this enum only so hosts
    /// can express it through the ordinary timer plumbing.
    HostFlush,
}

/// State that survives crashes (the paper's per-node protocol state of
/// §4 — version number, epoch number, stale flag, desired version, epoch
/// list — plus the object, the propagation log, and the 2PC artifacts that
/// textbook atomic commit requires to be durable).
#[derive(Clone, Debug, PartialEq)]
pub struct Durable {
    /// Replica version number.
    pub version: u64,
    /// Stale-data flag.
    pub stale: bool,
    /// Desired version number (meaningful only when `stale`).
    pub dversion: u64,
    /// Epoch number.
    pub enumber: u64,
    /// The epoch list (current epoch members, name-ordered).
    pub elist: Vec<NodeId>,
    /// The data item.
    pub object: PagedObject,
    /// Recent writes, for incremental propagation.
    pub log: WriteLog,
    /// A prepared-but-undecided 2PC action, if any. At most one can exist
    /// because preparing requires the exclusive replica lock.
    pub prepared: Option<(OpId, Action)>,
    /// Commit/abort decisions this node made as a 2PC coordinator.
    pub decisions: BTreeMap<OpId, bool>,
    /// Monotonic operation counter (durable so op ids stay unique).
    pub op_counter: u64,
    /// Good list recorded by the most recent write this replica
    /// participated in (safety-threshold extension, §4.1).
    pub last_good: Vec<NodeId>,
    /// Amnesia fence after a journal quarantine: 2PC decision records for
    /// ops this node coordinated with `seq <= quarantine_fence` may have
    /// been lost with the corrupt journal suffix, so decision queries for
    /// such ops (absent from [`decisions`](Durable::decisions)) must stay
    /// *silent* rather than presume abort — a lost commit record presumed
    /// aborted would let a later read miss an acknowledged write. Zero
    /// means the journal has never been quarantined.
    pub quarantine_fence: u64,
    /// True from a quarantined boot until the stale-rejoin handshake
    /// completes. Durable because the handshake itself is not: a crash
    /// during rejoin limbo can replay *clean* (the quarantined boot's own
    /// delta healed the journal), and a normal boot would otherwise resume
    /// as an ordinary stale node whose desired version never received the
    /// rejoin safety bound — the one replica that knows about a lost write
    /// would silently stop looking for it. While set, every boot re-enters
    /// the rejoin poll, and the replica stays in limbo (refusing
    /// permission requests, propagation offers, and 2PC prepares) until
    /// [`finish_rejoin`](crate::rejoin) clears it.
    pub rejoin_pending: bool,
}

impl Durable {
    /// The pristine durable state a node has before its first write: the
    /// base state journal replay starts from.
    pub fn pristine(config: &ProtocolConfig) -> Self {
        Durable {
            version: 0,
            stale: false,
            dversion: 0,
            enumber: 0,
            elist: (0..config.n_replicas as u32).map(NodeId).collect(),
            object: PagedObject::new(config.n_pages),
            log: WriteLog::new(config.log_cap),
            prepared: None,
            decisions: BTreeMap::new(),
            op_counter: 0,
            last_good: Vec::new(),
            quarantine_fence: 0,
            rejoin_pending: false,
        }
    }

    /// The epoch list as a [`View`].
    pub fn epoch_view(&self) -> View {
        View::new(self.elist.iter().copied())
    }
}

/// State wiped by a crash.
///
/// Keyed collections here are `BTreeMap`/`BTreeSet`, never hash maps:
/// timer-expiry handlers and shutdown paths iterate them, and that
/// iteration feeds `Effect` ordering and the explorer's state digests.
/// The engine contract is *same inputs ⇒ byte-identical effects*, which a
/// randomly seeded hash order would silently break (enforced by
/// `coterie-lint`'s `determinism` rule).
#[derive(Debug, Default)]
pub struct Volatile {
    /// The replica lock.
    pub lock: ReplicaLock,
    /// Lock-lease timers, by holder.
    pub lock_leases: BTreeMap<OpId, TimerId>,
    /// Write operations this node is coordinating.
    pub writes: BTreeMap<OpId, WriteCoordinator>,
    /// Client writes waiting to ride the next write round
    /// (coordinator-side batching, DESIGN.md §10). Volatile: a queued write
    /// was never acked, so losing the queue in a crash is a client-visible
    /// timeout, not a durability violation.
    pub write_queue: VecDeque<BatchEntry>,
    /// True while a refused batch sits requeued under contention backoff:
    /// the queue launcher stays quiet until the [`Timer::WriteQueueKick`]
    /// releases it, so the whole batch (plus anything that queued
    /// meanwhile) relaunches as one round instead of fragmenting into
    /// per-client retries.
    pub write_queue_held: bool,
    /// Read operations this node is coordinating.
    pub reads: BTreeMap<OpId, ReadCoordinator>,
    /// Epoch checks this node is coordinating.
    pub epochs: BTreeMap<OpId, EpochCoordinator>,
    /// Outgoing propagation state.
    pub propagator: Propagator,
    /// Incoming (target-side) propagation state.
    pub incoming_prop: Option<IncomingProp>,
    /// A `NewEpoch` prepare waiting for the replica lock. Epoch prepares
    /// are the only lock waiters in the system: writes and reads stay
    /// no-wait, so no hold-and-wait cycle (and hence no deadlock) can
    /// form, while epoch changes stop starving under write load.
    pub pending_epoch_prepare: Option<(OpId, NodeId, Action)>,
    /// When this node last saw an epoch check (initiation suppression).
    pub last_epoch_check_seen: Option<SimTime>,
    /// True while this node has an epoch check of its own in flight.
    pub epoch_check_active: bool,
    /// True while a one-shot epoch retry timer is pending.
    pub epoch_retry_armed: bool,
    /// Ops with a pending decision-retry timer (prevents duplicate chains).
    pub decision_retry_armed: BTreeSet<OpId>,
    /// Bully-election state (used when `initiator` is `Bully`).
    pub election: ElectionState,
    /// In-progress stale-rejoin after a quarantined boot (see
    /// [`crate::rejoin`]). While set, this replica refuses propagation
    /// offers and 2PC prepares — its desired version is not yet known.
    pub rejoin: Option<crate::rejoin::RejoinState>,
    /// Compiled quorum plans, keyed by epoch member set. Purely a cache:
    /// rebuilt on demand after a crash, and stale entries for dead epochs
    /// are harmless (they are simply never looked up again).
    pub plans: PlanCache,
}

impl Clone for Volatile {
    fn clone(&self) -> Self {
        Volatile {
            lock: self.lock.clone(),
            lock_leases: self.lock_leases.clone(),
            writes: self.writes.clone(),
            write_queue: self.write_queue.clone(),
            write_queue_held: self.write_queue_held,
            reads: self.reads.clone(),
            epochs: self.epochs.clone(),
            propagator: self.propagator.clone(),
            incoming_prop: self.incoming_prop.clone(),
            pending_epoch_prepare: self.pending_epoch_prepare.clone(),
            last_epoch_check_seen: self.last_epoch_check_seen,
            epoch_check_active: self.epoch_check_active,
            epoch_retry_armed: self.epoch_retry_armed,
            decision_retry_armed: self.decision_retry_armed.clone(),
            election: self.election.clone(),
            rejoin: self.rejoin.clone(),
            // A pure cache: cloning an empty one is always correct, and the
            // clone (driver forks in the interleaving explorer) rebuilds
            // plans on demand.
            plans: PlanCache::default(),
        }
    }
}

/// Cumulative per-node counters. Not protocol state: kept across crashes so
/// the harness reads totals for the whole run.
///
/// Since the observability refactor this is a thin facade over the unified
/// [`MetricsRegistry`] — every counter lives in the registry under the key
/// constants in [`crate::engine::metrics::keys`], and the named accessors
/// below exist so call sites read like the fields they replaced.
#[derive(Clone, Debug, Default)]
pub struct NodeStats {
    /// The unified per-node registry (counters + histograms).
    pub registry: MetricsRegistry,
}

impl NodeStats {
    /// Committed writes coordinated by this node.
    pub fn writes_ok(&self) -> u64 {
        self.registry.counter(keys::WRITES_OK)
    }

    /// Failed writes coordinated by this node (after retries).
    pub fn writes_failed(&self) -> u64 {
        self.registry.counter(keys::WRITES_FAILED)
    }

    /// Completed reads coordinated by this node.
    pub fn reads_ok(&self) -> u64 {
        self.registry.counter(keys::READS_OK)
    }

    /// Failed reads coordinated by this node.
    pub fn reads_failed(&self) -> u64 {
        self.registry.counter(keys::READS_FAILED)
    }

    /// Client-level retries due to contention.
    pub fn retries(&self) -> u64 {
        self.registry.counter(keys::RETRIES)
    }

    /// Times the heavy procedure ran.
    pub fn heavy_runs(&self) -> u64 {
        self.registry.counter(keys::HEAVY_RUNS)
    }

    /// Write rounds opened directly in the voting phase by a pipelined
    /// lock handoff (each one overlapped its predecessor's decision).
    pub fn chained_rounds(&self) -> u64 {
        self.registry.counter(keys::CHAINED_ROUNDS)
    }

    /// Client writes that committed while sharing a round with at least
    /// one other write (coordinator-side batching).
    pub fn batched_writes(&self) -> u64 {
        self.registry.counter(keys::BATCHED_WRITES)
    }

    /// Replicas written or marked per committed write (sum, for averaging).
    pub fn replicas_touched_sum(&self) -> u64 {
        self.registry.counter(keys::REPLICAS_TOUCHED_SUM)
    }

    /// Replicas marked stale (sum over committed writes).
    pub fn marked_stale_sum(&self) -> u64 {
        self.registry.counter(keys::MARKED_STALE_SUM)
    }

    /// Synchronous reconciliations (write-all-current baseline only).
    pub fn sync_reconciliations(&self) -> u64 {
        self.registry.counter(keys::SYNC_RECONCILIATIONS)
    }

    /// Propagations completed with this node as the source.
    pub fn propagations_done(&self) -> u64 {
        self.registry.counter(keys::PROPAGATIONS_DONE)
    }

    /// Epoch changes committed with this node as the coordinator.
    pub fn epoch_changes(&self) -> u64 {
        self.registry.counter(keys::EPOCH_CHANGES)
    }

    /// Messages received in `class`.
    pub fn msgs_in(&self, class: MsgClass) -> u64 {
        self.registry.counter(keys::msgs_in(class))
    }

    /// `CallFailed` bounces whose undeliverable message was in `class`.
    pub fn msgs_bounced(&self, class: MsgClass) -> u64 {
        self.registry.counter(keys::msgs_bounced(class))
    }

    /// Total messages received across classes.
    pub fn msgs_in_total(&self) -> u64 {
        MsgClass::ALL.iter().map(|&c| self.msgs_in(c)).sum()
    }
}

/// A replica node running the dynamic structured coterie protocol.
///
/// This is the sans-I/O engine: feed it [`Input`](crate::engine::Input)s
/// via [`step`](ReplicaNode::step) and apply the returned
/// [`Effect`](crate::engine::Effect)s. `Clone` forks the entire machine —
/// the interleaving explorer uses this to branch schedules.
#[derive(Clone, Debug)]
pub struct ReplicaNode {
    /// This node's name.
    pub me: NodeId,
    /// Shared configuration.
    pub config: ProtocolConfig,
    /// Crash-surviving state.
    pub durable: Durable,
    /// Crash-wiped state.
    pub vol: Volatile,
    /// Run-long counters (measurement only).
    pub stats: NodeStats,
    /// Engine-owned deterministic RNG (jitter): seeded from
    /// `config.seed ^ me`, advanced only by protocol draws.
    pub(crate) rng: Rng64,
    /// Monotonic timer-id allocator; node-unique for the engine's lifetime.
    pub(crate) timer_seq: u64,
    /// Lamport causal counter: ticked on every send, merged on every
    /// delivery. Carried on the wire (see
    /// [`Effect::Send`](crate::engine::Effect::Send)) so trace records
    /// from different nodes order causally. Advances identically whether
    /// or not a trace sink is attached.
    pub(crate) lamport: u64,
    /// Per-node monotonic trace sequence counter (survives crashes, like
    /// the stats — it is measurement state, not protocol state).
    pub(crate) trace_seq: u64,
    /// Shadow copy of [`durable`](ReplicaNode::durable) as of the last
    /// emitted `Persist`, used to diff out per-step deltas.
    pub(crate) shadow: Durable,
}

/// Context threaded through all protocol handlers (engine-owned).
pub use crate::engine::ctx::NodeCtx;

impl ReplicaNode {
    /// Creates a node with pristine durable state.
    pub fn new(me: NodeId, config: ProtocolConfig) -> Self {
        let durable = Durable::pristine(&config);
        ReplicaNode {
            me,
            rng: Rng64::new(config.seed ^ u64::from(me.0)),
            config,
            shadow: durable.clone(),
            durable,
            vol: Volatile::default(),
            stats: NodeStats::default(),
            timer_seq: 0,
            lamport: 0,
            trace_seq: 0,
        }
    }

    /// The node's current Lamport counter (trace metadata).
    pub fn lamport(&self) -> u64 {
        self.lamport
    }

    /// Stamps a host-level trace event: ticks the per-node sequence
    /// counter and returns `(seq, lamport)`. Hosts use this for events the
    /// engine cannot see (journal appends/flushes/replays, failpoint
    /// trips) so their records interleave correctly with engine-emitted
    /// ones.
    pub fn trace_stamp(&mut self) -> (u64, u64) {
        self.trace_seq += 1;
        (self.trace_seq, self.lamport)
    }

    /// Replaces the durable state wholesale — the recovery path for hosts
    /// that reconstruct it from stable storage
    /// (see [`StableStorage::replay`](crate::engine::StableStorage::replay))
    /// instead of trusting the in-memory copy. Resets the persistence
    /// shadow so the next step diffs against the installed state.
    pub fn install_durable(&mut self, durable: Durable) {
        self.shadow = durable.clone();
        self.durable = durable;
    }

    /// Allocates a fresh operation id.
    pub fn next_op(&mut self) -> OpId {
        self.durable.op_counter += 1;
        OpId {
            node: self.me,
            seq: self.durable.op_counter,
        }
    }

    /// All replica names.
    pub fn all_nodes(&self) -> Vec<NodeId> {
        (0..self.config.n_replicas as u32).map(NodeId).collect()
    }

    /// Arms (or re-arms) the lock lease for `op`.
    pub fn arm_lock_lease(&mut self, ctx: &mut NodeCtx<'_>, op: OpId) {
        let lease = self.config.lock_lease;
        let id = ctx.set_timer(lease, Timer::LockLease { op });
        self.vol.lock_leases.insert(op, id);
    }

    /// Releases `op`'s lock and lease bookkeeping, then hands the lock to
    /// a waiting epoch prepare if one is queued.
    pub fn release_lock(&mut self, ctx: &mut NodeCtx<'_>, op: OpId) {
        self.vol.lock.release(op);
        ctx.trace(TraceEvent::LockRelease { op });
        if let Some(timer) = self.vol.lock_leases.remove(&op) {
            ctx.cancel_timer(timer);
        }
        self.grant_pending_epoch_prepare(ctx);
    }

    pub(crate) fn handle_lock_lease(&mut self, ctx: &mut NodeCtx<'_>, op: OpId) {
        self.vol.lock_leases.remove(&op);
        // Never break a prepared transaction's lock: 2PC blocks until the
        // outcome is known (textbook behaviour).
        if let Some((prep_op, _)) = &self.durable.prepared {
            if *prep_op == op {
                self.arm_lock_lease(ctx, op);
                return;
            }
        }
        self.vol.lock.release(op);
        ctx.trace(TraceEvent::LockRelease { op });
        self.grant_pending_epoch_prepare(ctx);
    }
}

impl ReplicaNode {
    /// Entry point for client requests (and their retries).
    pub fn start_client_request(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        request: ClientRequest,
        attempt: u32,
    ) {
        if attempt > 0 {
            self.stats.registry.inc(keys::RETRIES);
        }
        match request {
            ClientRequest::Read { id } => self.start_read(ctx, id, attempt),
            ClientRequest::Write { id, write } => self.start_write(ctx, id, write, attempt),
        }
    }

    /// Arms the decision-retry chain for `op`, at most one chain per op.
    pub(crate) fn arm_decision_retry(&mut self, ctx: &mut NodeCtx<'_>, op: OpId) {
        if self.vol.decision_retry_armed.insert(op) {
            let retry = self.config.decision_retry;
            ctx.set_timer(retry, Timer::DecisionRetry { op });
        }
    }

    /// Jittered exponential backoff before retry `attempt`.
    pub fn backoff(&self, ctx: &mut NodeCtx<'_>, attempt: u32) -> SimDuration {
        let base = self.config.retry_backoff;
        let scaled = base * (1u64 << attempt.min(6));
        scaled + SimDuration::from_micros(ctx.rand_below(scaled.micros().max(1)))
    }
}
