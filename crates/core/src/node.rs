//! The replica node: durable and volatile state, and the event dispatch
//! that wires the protocol modules into the simulator's [`Application`]
//! interface.

use crate::config::{Mode, ProtocolConfig};
use crate::election::ElectionState;
use crate::epoch::EpochCoordinator;
use crate::locks::ReplicaLock;
use crate::msg::{Action, ClientRequest, Msg, MsgClass, OpId, ProtocolEvent};
use crate::propagate::{IncomingProp, Propagator};
use crate::read::ReadCoordinator;
use crate::store::{PagedObject, WriteLog};
use crate::write::WriteCoordinator;
use coterie_quorum::{NodeId, PlanCache, View};
use coterie_simnet::{Application, Ctx, SimDuration, SimTime, TimerId};
use std::collections::HashMap;

/// Timers used by the protocol.
#[derive(Clone, Debug)]
pub enum Timer {
    /// Permission-phase collection timeout for a coordinated operation.
    Collect {
        /// The operation.
        op: OpId,
    },
    /// Two-phase-commit vote timeout.
    Votes {
        /// The operation.
        op: OpId,
    },
    /// Read fetch timeout.
    Fetch {
        /// The operation.
        op: OpId,
    },
    /// Retry a failed client request after contention backoff.
    RetryClient {
        /// Attempt number (1-based for the first retry).
        attempt: u32,
        /// The original request to re-run.
        request: ClientRequest,
    },
    /// Server-side lock lease expiry.
    LockLease {
        /// The holding operation.
        op: OpId,
    },
    /// Periodic check: should this node initiate an epoch check?
    EpochTick,
    /// One-shot fast retry after an aborted epoch change (does not re-arm
    /// the periodic chain).
    EpochRetry,
    /// Continue the propagation task.
    PropKick,
    /// A propagation offer or transfer went unanswered.
    PropTimeout {
        /// The propagation attempt.
        prop: OpId,
    },
    /// Target-side guard: a permitted propagation never completed.
    PropLease {
        /// The propagation attempt.
        prop: OpId,
    },
    /// A recovered participant re-asks the coordinator for an outcome.
    DecisionRetry {
        /// The in-doubt operation.
        op: OpId,
    },
    /// Bully election: answer/announcement window elapsed.
    ElectionTimeout {
        /// The challenge round.
        round: OpId,
    },
}

/// State that survives crashes (the paper's per-node protocol state of
/// §4 — version number, epoch number, stale flag, desired version, epoch
/// list — plus the object, the propagation log, and the 2PC artifacts that
/// textbook atomic commit requires to be durable).
#[derive(Clone, Debug)]
pub struct Durable {
    /// Replica version number.
    pub version: u64,
    /// Stale-data flag.
    pub stale: bool,
    /// Desired version number (meaningful only when `stale`).
    pub dversion: u64,
    /// Epoch number.
    pub enumber: u64,
    /// The epoch list (current epoch members, name-ordered).
    pub elist: Vec<NodeId>,
    /// The data item.
    pub object: PagedObject,
    /// Recent writes, for incremental propagation.
    pub log: WriteLog,
    /// A prepared-but-undecided 2PC action, if any. At most one can exist
    /// because preparing requires the exclusive replica lock.
    pub prepared: Option<(OpId, Action)>,
    /// Commit/abort decisions this node made as a 2PC coordinator.
    pub decisions: HashMap<OpId, bool>,
    /// Monotonic operation counter (durable so op ids stay unique).
    pub op_counter: u64,
    /// Good list recorded by the most recent write this replica
    /// participated in (safety-threshold extension, §4.1).
    pub last_good: Vec<NodeId>,
}

impl Durable {
    fn new(config: &ProtocolConfig) -> Self {
        Durable {
            version: 0,
            stale: false,
            dversion: 0,
            enumber: 0,
            elist: (0..config.n_replicas as u32).map(NodeId).collect(),
            object: PagedObject::new(config.n_pages),
            log: WriteLog::new(config.log_cap),
            prepared: None,
            decisions: HashMap::new(),
            op_counter: 0,
            last_good: Vec::new(),
        }
    }

    /// The epoch list as a [`View`].
    pub fn epoch_view(&self) -> View {
        View::new(self.elist.iter().copied())
    }
}

/// State wiped by a crash.
#[derive(Default)]
pub struct Volatile {
    /// The replica lock.
    pub lock: ReplicaLock,
    /// Lock-lease timers, by holder.
    pub lock_leases: HashMap<OpId, TimerId>,
    /// Write operations this node is coordinating.
    pub writes: HashMap<OpId, WriteCoordinator>,
    /// Read operations this node is coordinating.
    pub reads: HashMap<OpId, ReadCoordinator>,
    /// Epoch checks this node is coordinating.
    pub epochs: HashMap<OpId, EpochCoordinator>,
    /// Outgoing propagation state.
    pub propagator: Propagator,
    /// Incoming (target-side) propagation state.
    pub incoming_prop: Option<IncomingProp>,
    /// A `NewEpoch` prepare waiting for the replica lock. Epoch prepares
    /// are the only lock waiters in the system: writes and reads stay
    /// no-wait, so no hold-and-wait cycle (and hence no deadlock) can
    /// form, while epoch changes stop starving under write load.
    pub pending_epoch_prepare: Option<(OpId, NodeId, Action)>,
    /// When this node last saw an epoch check (initiation suppression).
    pub last_epoch_check_seen: Option<SimTime>,
    /// True while this node has an epoch check of its own in flight.
    pub epoch_check_active: bool,
    /// True while a one-shot epoch retry timer is pending.
    pub epoch_retry_armed: bool,
    /// Ops with a pending decision-retry timer (prevents duplicate chains).
    pub decision_retry_armed: std::collections::HashSet<OpId>,
    /// Bully-election state (used when `initiator` is `Bully`).
    pub election: ElectionState,
    /// Compiled quorum plans, keyed by epoch member set. Purely a cache:
    /// rebuilt on demand after a crash, and stale entries for dead epochs
    /// are harmless (they are simply never looked up again).
    pub plans: PlanCache,
}

/// Cumulative per-node counters. Not protocol state: kept across crashes so
/// the harness reads totals for the whole run.
#[derive(Clone, Debug, Default)]
pub struct NodeStats {
    /// Committed writes coordinated by this node.
    pub writes_ok: u64,
    /// Failed writes coordinated by this node (after retries).
    pub writes_failed: u64,
    /// Completed reads coordinated by this node.
    pub reads_ok: u64,
    /// Failed reads coordinated by this node.
    pub reads_failed: u64,
    /// Client-level retries due to contention.
    pub retries: u64,
    /// Times the heavy procedure ran.
    pub heavy_runs: u64,
    /// Replicas written or marked per committed write (sum, for averaging).
    pub replicas_touched_sum: u64,
    /// Replicas marked stale (sum over committed writes).
    pub marked_stale_sum: u64,
    /// Synchronous reconciliations (write-all-current baseline only).
    pub sync_reconciliations: u64,
    /// Propagations completed with this node as the source.
    pub propagations_done: u64,
    /// Epoch changes committed with this node as the coordinator.
    pub epoch_changes: u64,
    /// Messages received, by class.
    pub msgs_in: HashMap<MsgClass, u64>,
    /// `CallFailed` bounces, by class of the undeliverable message.
    pub msgs_bounced: HashMap<MsgClass, u64>,
}

impl NodeStats {
    /// Total messages received across classes.
    pub fn msgs_in_total(&self) -> u64 {
        self.msgs_in.values().sum()
    }
}

/// A replica node running the dynamic structured coterie protocol.
pub struct ReplicaNode {
    /// This node's name.
    pub me: NodeId,
    /// Shared configuration.
    pub config: ProtocolConfig,
    /// Crash-surviving state.
    pub durable: Durable,
    /// Crash-wiped state.
    pub vol: Volatile,
    /// Run-long counters (measurement only).
    pub stats: NodeStats,
}

/// Context alias used by all protocol handlers.
pub type NodeCtx<'a> = Ctx<'a, ReplicaNode>;

impl ReplicaNode {
    /// Creates a node with pristine durable state.
    pub fn new(me: NodeId, config: ProtocolConfig) -> Self {
        let durable = Durable::new(&config);
        ReplicaNode {
            me,
            config,
            durable,
            vol: Volatile::default(),
            stats: NodeStats::default(),
        }
    }

    /// Allocates a fresh operation id.
    pub fn next_op(&mut self) -> OpId {
        self.durable.op_counter += 1;
        OpId {
            node: self.me,
            seq: self.durable.op_counter,
        }
    }

    /// All replica names.
    pub fn all_nodes(&self) -> Vec<NodeId> {
        (0..self.config.n_replicas as u32).map(NodeId).collect()
    }

    /// Arms (or re-arms) the lock lease for `op`.
    pub fn arm_lock_lease(&mut self, ctx: &mut NodeCtx<'_>, op: OpId) {
        let lease = self.config.lock_lease;
        let id = ctx.set_timer(lease, Timer::LockLease { op });
        self.vol.lock_leases.insert(op, id);
    }

    /// Releases `op`'s lock and lease bookkeeping, then hands the lock to
    /// a waiting epoch prepare if one is queued.
    pub fn release_lock(&mut self, ctx: &mut NodeCtx<'_>, op: OpId) {
        self.vol.lock.release(op);
        if let Some(timer) = self.vol.lock_leases.remove(&op) {
            ctx.cancel_timer(timer);
        }
        self.grant_pending_epoch_prepare(ctx);
    }

    fn handle_lock_lease(&mut self, ctx: &mut NodeCtx<'_>, op: OpId) {
        self.vol.lock_leases.remove(&op);
        // Never break a prepared transaction's lock: 2PC blocks until the
        // outcome is known (textbook behaviour).
        if let Some((prep_op, _)) = &self.durable.prepared {
            if *prep_op == op {
                self.arm_lock_lease(ctx, op);
                return;
            }
        }
        self.vol.lock.release(op);
        self.grant_pending_epoch_prepare(ctx);
    }
}

impl Application for ReplicaNode {
    type Msg = Msg;
    type Timer = Timer;
    type External = ClientRequest;
    type Output = ProtocolEvent;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self>) {
        // Fence any in-doubt prepared transaction behind the replica lock
        // and chase its outcome.
        if let Some((op, _)) = self.durable.prepared.clone() {
            self.vol.lock.force_exclusive(op);
            self.arm_decision_retry(ctx, op);
        }
        if matches!(self.config.mode, Mode::Dynamic { .. }) {
            self.arm_epoch_tick(ctx);
        }
    }

    fn on_crash(&mut self) {
        self.vol = Volatile::default();
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Self>, from: NodeId, msg: Msg) {
        *self.stats.msgs_in.entry(msg.class()).or_insert(0) += 1;
        match msg {
            Msg::WriteReq { op } => self.srv_write_req(ctx, from, op),
            Msg::ReadReq { op } => self.srv_read_req(ctx, from, op),
            Msg::EpochCheckReq { op } => self.srv_epoch_check_req(ctx, from, op),
            Msg::StateResp { op, granted, state } => {
                self.on_state_resp(ctx, from, op, granted, state)
            }
            Msg::Release { op } => self.release_lock(ctx, op),
            Msg::Prepare { op, action } => self.srv_prepare(ctx, from, op, action),
            Msg::Vote { op, yes } => self.on_vote(ctx, from, op, yes),
            Msg::Decision { op, commit } => self.srv_decision(ctx, from, op, commit),
            Msg::DecisionQuery { op } => self.srv_decision_query(ctx, from, op),
            Msg::FetchReq { op } => self.srv_fetch_req(ctx, from, op),
            Msg::FetchResp { op, version, pages } => {
                self.on_fetch_resp(ctx, from, op, version, pages)
            }
            Msg::PropOffer { prop, version } => self.srv_prop_offer(ctx, from, prop, version),
            Msg::PropResp { prop, reply } => self.on_prop_resp(ctx, from, prop, reply),
            Msg::PropData {
                prop,
                payload,
                source_version,
            } => self.srv_prop_data(ctx, from, prop, payload, source_version),
            Msg::PropAck { prop, ok } => self.on_prop_ack(ctx, from, prop, ok),
            Msg::PropCancel { prop } => self.srv_prop_cancel(ctx, from, prop),
            Msg::Election { round } => self.srv_election(ctx, from, round),
            Msg::ElectionAlive { round } => self.on_election_alive(ctx, from, round),
            Msg::Coordinator => self.srv_coordinator(ctx, from),
        }
    }

    fn on_call_failed(&mut self, ctx: &mut Ctx<'_, Self>, to: NodeId, msg: Msg) {
        *self.stats.msgs_bounced.entry(msg.class()).or_insert(0) += 1;
        match msg {
            Msg::WriteReq { op } => self.on_write_peer_failed(ctx, op, to),
            Msg::ReadReq { op } => self.on_read_peer_failed(ctx, op, to),
            Msg::EpochCheckReq { op } => self.on_epoch_peer_failed(ctx, op, to),
            // An unreachable 2PC participant is an implicit "no" (it cannot
            // have prepared: it never received the Prepare).
            Msg::Prepare { op, .. } => self.on_vote(ctx, to, op, false),
            Msg::FetchReq { op } => self.on_fetch_failed(ctx, op, to),
            Msg::PropOffer { prop, .. } | Msg::PropData { prop, .. } => {
                self.on_prop_peer_failed(ctx, prop, to)
            }
            Msg::DecisionQuery { op } => {
                // Coordinator unreachable: stay blocked, re-query later
                // (deduplicated: at most one retry chain per op).
                if self
                    .durable
                    .prepared
                    .as_ref()
                    .is_some_and(|(p, _)| *p == op)
                {
                    self.arm_decision_retry(ctx, op);
                }
            }
            // Lost responses and notifications are covered by coordinator
            // timeouts; lost decisions are re-fetched by the participant.
            Msg::StateResp { .. }
            | Msg::Vote { .. }
            | Msg::Decision { .. }
            | Msg::Release { .. }
            | Msg::FetchResp { .. }
            | Msg::PropResp { .. }
            | Msg::PropAck { .. }
            | Msg::PropCancel { .. }
            | Msg::Election { .. }
            | Msg::ElectionAlive { .. }
            | Msg::Coordinator => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, timer: Timer) {
        match timer {
            Timer::Collect { op } => self.on_collect_timeout(ctx, op),
            Timer::Votes { op } => self.on_vote_timeout(ctx, op),
            Timer::Fetch { op } => self.on_fetch_timeout(ctx, op),
            Timer::RetryClient { attempt, request } => {
                self.start_client_request(ctx, request, attempt)
            }
            Timer::LockLease { op } => self.handle_lock_lease(ctx, op),
            Timer::EpochTick => self.on_epoch_tick(ctx),
            Timer::EpochRetry => self.on_epoch_retry(ctx),
            Timer::PropKick => self.on_prop_kick(ctx),
            Timer::PropTimeout { prop } => self.on_prop_timeout(ctx, prop),
            Timer::PropLease { prop } => self.on_prop_lease(ctx, prop),
            Timer::DecisionRetry { op } => self.on_decision_retry(ctx, op),
            Timer::ElectionTimeout { round } => self.on_election_timeout(ctx, round),
        }
    }

    fn on_external(&mut self, ctx: &mut Ctx<'_, Self>, request: ClientRequest) {
        self.start_client_request(ctx, request, 0);
    }
}

impl ReplicaNode {
    /// Entry point for client requests (and their retries).
    pub fn start_client_request(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        request: ClientRequest,
        attempt: u32,
    ) {
        if attempt > 0 {
            self.stats.retries += 1;
        }
        match request {
            ClientRequest::Read { id } => self.start_read(ctx, id, attempt),
            ClientRequest::Write { id, write } => self.start_write(ctx, id, write, attempt),
        }
    }

    /// Arms the decision-retry chain for `op`, at most one chain per op.
    pub(crate) fn arm_decision_retry(&mut self, ctx: &mut NodeCtx<'_>, op: OpId) {
        if self.vol.decision_retry_armed.insert(op) {
            let retry = self.config.decision_retry;
            ctx.set_timer(retry, Timer::DecisionRetry { op });
        }
    }

    /// Jittered exponential backoff before retry `attempt`.
    pub fn backoff(&self, ctx: &mut NodeCtx<'_>, attempt: u32) -> SimDuration {
        let base = self.config.retry_backoff;
        let scaled = base * (1u64 << attempt.min(6));
        scaled + SimDuration::from_micros(ctx.rand_below(scaled.micros().max(1)))
    }
}
