//! Journal-replay durability property: at **every** persist boundary of a
//! randomized schedule, the durable state reconstructed from the journal
//! alone is identical to the engine's live durable state — so a crash at
//! any point loses nothing the protocol promised to keep.
//!
//! The driver appends each [`Effect::Persist`] delta to a per-node
//! [`MemJournal`] as it applies effects; replaying that journal from the
//! pristine state must reproduce `durable` exactly. The property also
//! crashes and recovers nodes mid-schedule (recovery re-installs the
//! replayed state), so the equality is checked across real fail-stop
//! cycles, not just quiet runs.

use std::sync::Arc;

use bytes::Bytes;
use coterie_base::SimDuration;
use coterie_core::{ClientRequest, PartialWrite, ProtocolConfig, Rng64, StepDriver};
use coterie_quorum::{GridCoterie, MajorityCoterie, NodeId};
use proptest::prelude::*;

const N: usize = 4;

fn driver_with_workload(rule_majority: bool, seed: u64) -> StepDriver {
    let rule: Arc<dyn coterie_quorum::CoterieRule> = if rule_majority {
        Arc::new(MajorityCoterie::new())
    } else {
        Arc::new(GridCoterie::new())
    };
    let config = ProtocolConfig::new(rule, N).pages(4).rng_seed(seed);
    let mut driver = StepDriver::new(N, config);
    for (id, node, page) in [(1u64, 0u32, 0u16), (2, 1, 1), (3, 2, 0)] {
        driver.inject(
            NodeId(node),
            ClientRequest::Write {
                id,
                write: PartialWrite::new([(page, Bytes::copy_from_slice(b"payload"))]),
            },
        );
    }
    driver.inject(NodeId(3), ClientRequest::Read { id: 4 });
    driver
}

/// Every node's journal must replay to exactly its live durable state.
fn assert_replay_matches(driver: &StepDriver, step: usize) {
    for id in 0..N as u32 {
        let node = NodeId(id);
        let live = &driver.node(node).durable;
        let replayed = driver.replay_journal(node);
        assert_eq!(
            &replayed, live,
            "journal replay diverged from live durable state at node {id}, step {step}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Drives a random interleaving of deliveries, timer firings, crashes,
    /// and recoveries; after every event, replay must equal live state on
    /// every node (crashing anywhere between two events would recover
    /// correctly).
    #[test]
    fn journal_replay_equals_durable_at_every_boundary(
        majority in any::<bool>(),
        seed in 0u64..1 << 48,
        schedule_seed in any::<u64>(),
        steps in 40usize..160,
    ) {
        let mut driver = driver_with_workload(majority, seed);
        let mut schedule = Rng64::new(schedule_seed);
        assert_replay_matches(&driver, 0);

        for step in 0..steps {
            let msgs = driver.pending_messages().len();
            let timers = driver.pending_timers().len();
            // Weight the event space: deliveries and timer firings move the
            // protocol; a small tail of the choice range injects crashes
            // and recoveries.
            let fault_slots = 4;
            let total = msgs + timers + fault_slots;
            let pick = schedule.below(total as u64) as usize;
            if pick < msgs {
                driver.deliver(pick);
            } else if pick < msgs + timers {
                driver.fire(pick - msgs);
            } else {
                // Fault slot: toggle the liveness of one of two nodes.
                let node = NodeId(((pick - msgs - timers) % 2) as u32);
                if driver.is_down(node) {
                    driver.recover(node);
                } else {
                    driver.crash(node);
                }
            }
            assert_replay_matches(&driver, step + 1);
        }

        // Drain to quiescence (recover anyone still down first) and check
        // the final states too.
        for id in 0..N as u32 {
            if driver.is_down(NodeId(id)) {
                driver.recover(NodeId(id));
            }
        }
        driver.run_for(SimDuration::from_secs(30));
        assert_replay_matches(&driver, usize::MAX);

        // The journals saw real traffic: at least one node persisted
        // something beyond its pristine state.
        let persisted: u64 = (0..N as u32)
            .map(|id| driver.journal(NodeId(id)).appended_total())
            .sum();
        prop_assert!(persisted > 0, "schedule persisted nothing");
    }
}
