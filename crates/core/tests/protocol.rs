//! End-to-end protocol tests over the discrete-event simulator: happy-path
//! reads and writes, stale marking and propagation, epoch changes under
//! failures, partitions, crash recovery, and one-copy serializability.

use bytes::Bytes;
use coterie_core::{
    ClientRequest, FailReason, PartialWrite, ProtocolConfig, ProtocolEvent, ReplicaNode,
};
use coterie_quorum::{GridCoterie, MajorityCoterie, NodeId, RowaCoterie};
use coterie_simnet::{Partition, Sim, SimConfig, SimDuration, SimTime};
use std::sync::Arc;

type Cluster = Sim<ReplicaNode>;

fn grid_cluster(n: usize, seed: u64) -> Cluster {
    let config = ProtocolConfig::new(Arc::new(GridCoterie::new()), n)
        .check_period(SimDuration::from_secs(2));
    Sim::new(
        n,
        SimConfig {
            seed,
            ..Default::default()
        },
        |id| ReplicaNode::new(id, config.clone()),
    )
}

fn majority_cluster(n: usize, seed: u64) -> Cluster {
    let config = ProtocolConfig::new(Arc::new(MajorityCoterie::new()), n)
        .check_period(SimDuration::from_secs(2));
    Sim::new(
        n,
        SimConfig {
            seed,
            ..Default::default()
        },
        |id| ReplicaNode::new(id, config.clone()),
    )
}

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

fn write_req(id: u64, page: u16, data: &str) -> ClientRequest {
    ClientRequest::Write {
        id,
        write: PartialWrite::new([(page, b(data))]),
    }
}

/// Drains outputs, separating successes and failures.
fn events(sim: &mut Cluster) -> Vec<ProtocolEvent> {
    sim.take_outputs().into_iter().map(|(_, _, e)| e).collect()
}

fn write_oks(events: &[ProtocolEvent]) -> Vec<(u64, u64)> {
    events
        .iter()
        .filter_map(|e| match e {
            ProtocolEvent::WriteOk { id, version, .. } => Some((*id, *version)),
            _ => None,
        })
        .collect()
}

fn read_oks(events: &[ProtocolEvent]) -> Vec<(u64, u64)> {
    events
        .iter()
        .filter_map(|e| match e {
            ProtocolEvent::ReadOk { id, version, .. } => Some((*id, *version)),
            _ => None,
        })
        .collect()
}

fn failures(events: &[ProtocolEvent]) -> Vec<(u64, FailReason)> {
    events
        .iter()
        .filter_map(|e| match e {
            ProtocolEvent::Failed { id, reason } => Some((*id, *reason)),
            _ => None,
        })
        .collect()
}

#[test]
fn single_write_commits_and_read_sees_it() {
    let mut sim = grid_cluster(9, 1);
    sim.schedule_external(SimTime::ZERO, NodeId(0), write_req(1, 0, "hello"));
    sim.run_for(SimDuration::from_millis(500));
    sim.schedule_external(sim.now(), NodeId(4), ClientRequest::Read { id: 2 });
    sim.run_for(SimDuration::from_millis(500));
    let evs = events(&mut sim);
    assert_eq!(write_oks(&evs), vec![(1, 1)]);
    let reads = read_oks(&evs);
    assert_eq!(reads, vec![(2, 1)]);
    let page = evs.iter().find_map(|e| match e {
        ProtocolEvent::ReadOk { pages, .. } => Some(pages[0].clone()),
        _ => None,
    });
    assert_eq!(page.unwrap(), b("hello"));
    assert!(failures(&evs).is_empty());
}

#[test]
fn sequential_writes_get_increasing_contiguous_versions() {
    let mut sim = grid_cluster(9, 2);
    // Issue from different coordinators, spaced out to avoid contention.
    for i in 0..20u64 {
        sim.schedule_external(
            SimTime(i * 300_000),
            NodeId((i % 9) as u32),
            write_req(i, (i % 4) as u16, &format!("v{i}")),
        );
    }
    sim.run_for(SimDuration::from_secs(30));
    let evs = events(&mut sim);
    let mut oks = write_oks(&evs);
    oks.sort_by_key(|&(_, v)| v);
    assert_eq!(
        oks.len(),
        20,
        "all writes should commit: {:?}",
        failures(&evs)
    );
    for (i, &(_, v)) in oks.iter().enumerate() {
        assert_eq!(v as usize, i + 1, "versions must be contiguous");
    }
}

#[test]
fn different_quorums_cause_stale_marking_and_propagation_catches_up() {
    let mut sim = grid_cluster(9, 3);
    let mut marked = 0u64;
    for i in 0..12u64 {
        sim.schedule_external(
            SimTime(i * 400_000),
            NodeId((i % 9) as u32),
            write_req(i, 0, &format!("v{i}")),
        );
    }
    sim.run_for(SimDuration::from_secs(20));
    let evs = events(&mut sim);
    assert_eq!(write_oks(&evs).len(), 12);
    for e in &evs {
        if let ProtocolEvent::WriteOk { marked_stale, .. } = e {
            marked += *marked_stale as u64;
        }
    }
    assert!(
        marked > 0,
        "rotating grid quorums must encounter behind replicas and mark them stale"
    );
    // Propagation must eventually clear every stale flag. (Replicas that
    // never landed in any quorum may legitimately sit behind un-stale —
    // the paper's protocol only repairs replicas it has marked.)
    sim.run_for(SimDuration::from_secs(30));
    let mut at_latest = 0;
    for id in 0..9u32 {
        let node = sim.node(NodeId(id));
        assert!(
            !node.durable.stale,
            "node {id} still stale after quiescence"
        );
        if node.durable.version == 12 {
            at_latest += 1;
        }
    }
    // Every marked-stale replica was caught up to 12, so a write quorum's
    // worth of replicas (>= 5 of 9) must be fully current.
    assert!(at_latest >= 5, "only {at_latest} replicas reached v12");
    // And a read still sees the latest data regardless.
    sim.schedule_external(sim.now(), NodeId(8), ClientRequest::Read { id: 999 });
    sim.run_for(SimDuration::from_secs(1));
    let evs = events(&mut sim);
    assert_eq!(read_oks(&evs), vec![(999, 12)]);
}

#[test]
fn reads_never_return_stale_data() {
    let mut sim = grid_cluster(9, 4);
    let mut expected_version = 0u64;
    for round in 0..10u64 {
        sim.schedule_external(
            sim.now(),
            NodeId((round % 9) as u32),
            write_req(round, 0, &format!("r{round}")),
        );
        sim.run_for(SimDuration::from_millis(300));
        expected_version += 1;
        sim.schedule_external(
            sim.now(),
            NodeId(((round + 3) % 9) as u32),
            ClientRequest::Read { id: 100 + round },
        );
        sim.run_for(SimDuration::from_millis(300));
        let evs = events(&mut sim);
        let reads = read_oks(&evs);
        assert_eq!(
            reads,
            vec![(100 + round, expected_version)],
            "read after write {round} returned wrong version"
        );
    }
}

#[test]
fn writes_survive_node_failures_via_epoch_change() {
    let mut sim = grid_cluster(9, 5);
    // Warm up with one write.
    sim.schedule_external(SimTime::ZERO, NodeId(0), write_req(0, 0, "x"));
    sim.run_for(SimDuration::from_secs(1));
    // Kill three nodes at once — but not a full column and not one node
    // from every column, either of which would (correctly!) destroy every
    // write quorum of the 9-epoch and freeze it. {3, 6, 7} leaves column 3
    // ({2, 5, 8}) fully alive.
    for &v in &[3u32, 6, 7] {
        sim.crash_now(NodeId(v));
    }
    // Let epoch checking notice (period 2 s for rank 0 + jitter).
    sim.run_for(SimDuration::from_secs(10));
    let evs = events(&mut sim);
    let epochs: Vec<_> = evs
        .iter()
        .filter_map(|e| match e {
            ProtocolEvent::EpochInstalled { enumber, members } => Some((*enumber, members.len())),
            _ => None,
        })
        .collect();
    assert!(
        epochs.iter().any(|&(_, len)| len == 6),
        "a 6-member epoch must form, saw {epochs:?}"
    );
    // Writes now succeed even though a whole original column is dead
    // (the static grid protocol would be stuck: no full column available).
    sim.schedule_external(sim.now(), NodeId(0), write_req(1, 1, "after"));
    sim.run_for(SimDuration::from_secs(2));
    let evs = events(&mut sim);
    assert_eq!(write_oks(&evs).len(), 1, "failures: {:?}", failures(&evs));
}

#[test]
fn static_mode_blocks_when_a_column_dies() {
    let config = ProtocolConfig::new(Arc::new(GridCoterie::new()), 9).static_mode();
    let mut sim = Sim::new(
        9,
        SimConfig {
            seed: 6,
            ..Default::default()
        },
        |id| ReplicaNode::new(id, config.clone()),
    );
    for &v in &[1u32, 4, 7] {
        sim.crash_now(NodeId(v));
    }
    sim.schedule_external(SimTime(1000), NodeId(0), write_req(1, 0, "w"));
    sim.run_for(SimDuration::from_secs(5));
    let evs = events(&mut sim);
    assert!(write_oks(&evs).is_empty());
    let fails = failures(&evs);
    assert_eq!(fails.len(), 1);
    assert_eq!(fails[0].1, FailReason::NoQuorum);
}

#[test]
fn gradual_failures_leave_three_survivors_still_writable() {
    // The headline fault-tolerance claim: with epoch adjustment between
    // failures, the system stays available down to 3 nodes (grid).
    let mut sim = grid_cluster(9, 7);
    sim.schedule_external(SimTime::ZERO, NodeId(0), write_req(0, 0, "start"));
    sim.run_for(SimDuration::from_secs(1));
    let _ = events(&mut sim); // drain the warm-up write's event
    for (i, victim) in [8u32, 7, 6, 5, 4, 3].iter().enumerate() {
        sim.crash_now(NodeId(*victim));
        // Give epoch checking time to adjust after each failure.
        sim.run_for(SimDuration::from_secs(12));
        sim.schedule_external(
            sim.now(),
            NodeId(0),
            write_req(10 + i as u64, 0, &format!("after{i}")),
        );
        sim.run_for(SimDuration::from_secs(2));
        let evs = events(&mut sim);
        assert_eq!(
            write_oks(&evs).len(),
            1,
            "write after {} failures should commit: {:?}",
            i + 1,
            failures(&evs)
        );
    }
    // Only nodes 0, 1, 2 remain; the epoch should be exactly them.
    let survivors = sim.node(NodeId(0)).durable.elist.clone();
    assert_eq!(survivors, vec![NodeId(0), NodeId(1), NodeId(2)]);
}

#[test]
fn minority_partition_cannot_write_majority_can() {
    let mut sim = majority_cluster(5, 8);
    sim.schedule_external(SimTime::ZERO, NodeId(0), write_req(0, 0, "base"));
    sim.run_for(SimDuration::from_secs(1));
    // Partition {3, 4} away.
    sim.set_partition_now(Partition::split(5, &[NodeId(3), NodeId(4)]));
    sim.run_for(SimDuration::from_secs(10)); // epoch shrinks to {0,1,2}
    let _ = events(&mut sim);
    sim.schedule_external(sim.now(), NodeId(0), write_req(1, 0, "major"));
    sim.schedule_external(sim.now(), NodeId(3), write_req(2, 0, "minor"));
    sim.run_for(SimDuration::from_secs(3));
    let evs = events(&mut sim);
    let oks = write_oks(&evs);
    assert_eq!(oks.len(), 1, "only the majority side commits: {evs:?}");
    assert_eq!(oks[0].0, 1);
    let fails = failures(&evs);
    assert!(fails.iter().any(|&(id, _)| id == 2), "minority write fails");

    // Heal: the partitioned nodes rejoin and catch up.
    sim.set_partition_now(Partition::connected(5));
    sim.run_for(SimDuration::from_secs(30));
    let _ = events(&mut sim);
    for id in 0..5u32 {
        let node = sim.node(NodeId(id));
        assert_eq!(node.durable.version, 2, "node {id} must converge");
        assert!(!node.durable.stale);
        assert_eq!(node.durable.elist.len(), 5, "epoch must re-expand");
    }
}

#[test]
fn crashed_node_recovers_and_is_reabsorbed() {
    let mut sim = grid_cluster(4, 9);
    sim.schedule_external(SimTime::ZERO, NodeId(0), write_req(0, 0, "a"));
    sim.run_for(SimDuration::from_secs(1));
    sim.crash_now(NodeId(3));
    sim.run_for(SimDuration::from_secs(10));
    sim.schedule_external(sim.now(), NodeId(0), write_req(1, 1, "b"));
    sim.run_for(SimDuration::from_secs(2));
    assert_eq!(sim.node(NodeId(0)).durable.elist.len(), 3);
    sim.recover_now(NodeId(3));
    sim.run_for(SimDuration::from_secs(20));
    let node3 = sim.node(NodeId(3));
    assert_eq!(node3.durable.elist.len(), 4, "recovered node rejoins");
    assert_eq!(node3.durable.version, 2, "recovered node catches up");
    assert!(!node3.durable.stale);
}

#[test]
fn rowa_reads_are_one_node_and_writes_touch_all() {
    let config = ProtocolConfig::new(Arc::new(RowaCoterie::new()), 4)
        .check_period(SimDuration::from_secs(2));
    let mut sim = Sim::new(
        4,
        SimConfig {
            seed: 10,
            ..Default::default()
        },
        |id| ReplicaNode::new(id, config.clone()),
    );
    sim.schedule_external(SimTime::ZERO, NodeId(1), write_req(0, 0, "w"));
    sim.run_for(SimDuration::from_secs(1));
    let evs = events(&mut sim);
    let oks = write_oks(&evs);
    assert_eq!(oks.len(), 1);
    if let Some(ProtocolEvent::WriteOk {
        replicas_touched, ..
    }) = evs
        .iter()
        .find(|e| matches!(e, ProtocolEvent::WriteOk { .. }))
    {
        assert_eq!(*replicas_touched, 4);
    }
    sim.schedule_external(sim.now(), NodeId(2), ClientRequest::Read { id: 1 });
    sim.run_for(SimDuration::from_secs(1));
    let evs = events(&mut sim);
    assert_eq!(read_oks(&evs), vec![(1, 1)]);
}

#[test]
fn concurrent_writes_serialize() {
    let mut sim = grid_cluster(9, 11);
    // Fire 6 writes at the same instant from different coordinators.
    for i in 0..6u64 {
        sim.schedule_external(
            SimTime::ZERO,
            NodeId(i as u32),
            write_req(i, 0, &format!("c{i}")),
        );
    }
    sim.run_for(SimDuration::from_secs(20));
    let evs = events(&mut sim);
    let mut oks = write_oks(&evs);
    let fails = failures(&evs);
    // Everyone either commits (serialized by locks, with retries) or gives
    // up with a contention failure; versions of committed writes are
    // distinct and contiguous from 1.
    oks.sort_by_key(|&(_, v)| v);
    for (i, &(_, v)) in oks.iter().enumerate() {
        assert_eq!(v as usize, i + 1);
    }
    assert_eq!(oks.len() + fails.len(), 6);
    assert!(!oks.is_empty(), "at least one concurrent write must win");
}

#[test]
fn deterministic_replay() {
    let run = |seed| {
        let mut sim = grid_cluster(9, seed);
        for i in 0..10u64 {
            sim.schedule_external(
                SimTime(i * 200_000),
                NodeId((i % 9) as u32),
                write_req(i, 0, &format!("d{i}")),
            );
        }
        sim.schedule_crash(SimTime(1_500_000), NodeId(2));
        sim.run_for(SimDuration::from_secs(10));
        sim.take_outputs()
            .into_iter()
            .map(|(t, n, e)| format!("{t:?} {n:?} {e:?}"))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(42), run(42));
}

#[test]
fn write_failure_reported_when_too_few_nodes_up() {
    let mut sim = majority_cluster(5, 12);
    sim.schedule_external(SimTime::ZERO, NodeId(0), write_req(0, 0, "x"));
    sim.run_for(SimDuration::from_secs(1));
    // Kill 4 of 5 instantly: epoch cannot adjust fast enough (majority of
    // the 5-epoch is gone), so writes must fail.
    for v in 1..5u32 {
        sim.crash_now(NodeId(v));
    }
    sim.schedule_external(sim.now(), NodeId(0), write_req(1, 0, "y"));
    sim.run_for(SimDuration::from_secs(5));
    let evs = events(&mut sim);
    let fails = failures(&evs);
    assert!(
        fails
            .iter()
            .any(|&(id, r)| id == 1 && r == FailReason::NoQuorum),
        "write must fail with NoQuorum: {evs:?}"
    );
}
