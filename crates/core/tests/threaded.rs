//! The same `ReplicaNode` program that runs on the deterministic simulator
//! also runs on real OS threads (crossbeam channels, wall-clock timers):
//! the protocol implementation is substrate-independent.

// Deadline polling against the real-thread host needs the real clock.
#![allow(clippy::disallowed_methods)]

use bytes::Bytes;
use coterie_core::{ClientRequest, PartialWrite, ProtocolConfig, ProtocolEvent, ReplicaNode};
use coterie_quorum::{GridCoterie, NodeId};
use coterie_simnet::{SimDuration, ThreadedRuntime};
use std::sync::Arc;
use std::time::Duration;

fn spawn_cluster(n: usize) -> ThreadedRuntime<ReplicaNode> {
    // Epoch checks every 500 ms of *wall clock*; timeouts as configured.
    let config = ProtocolConfig::new(Arc::new(GridCoterie::new()), n)
        .check_period(SimDuration::from_millis(500));
    ThreadedRuntime::spawn(n, 42, Duration::from_millis(20), move |id| {
        ReplicaNode::new(id, config.clone())
    })
}

#[test]
fn writes_and_reads_commit_over_real_threads() {
    let rt = spawn_cluster(9);
    for i in 0..5u64 {
        rt.inject(
            NodeId((i % 9) as u32),
            ClientRequest::Write {
                id: i,
                write: PartialWrite::new([(0, Bytes::from(format!("w{i}")))]),
            },
        );
        // Wait for this write's commit before issuing the next (real time,
        // so ordering is not deterministic otherwise).
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let mut committed = false;
        while std::time::Instant::now() < deadline {
            if let Some((_, e)) = rt.recv_output(Duration::from_millis(200)) {
                match e {
                    ProtocolEvent::WriteOk { id, version, .. } if id == i => {
                        assert_eq!(version, i + 1);
                        committed = true;
                        break;
                    }
                    _ => {}
                }
            }
        }
        assert!(committed, "write {i} did not commit over threads");
    }
    // Read from a different node.
    rt.inject(NodeId(7), ClientRequest::Read { id: 99 });
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut read_ok = false;
    while std::time::Instant::now() < deadline {
        if let Some((
            _,
            ProtocolEvent::ReadOk {
                id: 99,
                version,
                pages,
                ..
            },
        )) = rt.recv_output(Duration::from_millis(200))
        {
            assert_eq!(version, 5);
            assert_eq!(pages[0], Bytes::from_static(b"w4"));
            read_ok = true;
            break;
        }
    }
    assert!(read_ok, "read did not complete over threads");
    // Give asynchronous propagation a moment, then check convergence: at
    // least the safety threshold's worth of replicas hold v5 and nobody is
    // left stale.
    std::thread::sleep(Duration::from_millis(1500));
    let nodes = rt.shutdown();
    let holders = nodes.iter().filter(|n| n.durable.version == 5).count();
    assert!(holders >= 2, "only {holders} replicas hold v5");
    assert!(nodes.iter().all(|n| !n.durable.stale), "stale replica left");
}

#[test]
fn epoch_adapts_to_a_crash_over_real_threads() {
    let rt = spawn_cluster(9);
    rt.crash(NodeId(8));
    // Wait for an epoch installation event (check period is 500 ms).
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    let mut installed = false;
    while std::time::Instant::now() < deadline {
        if let Some((_, ProtocolEvent::EpochInstalled { members, .. })) =
            rt.recv_output(Duration::from_millis(200))
        {
            if members.len() == 8 {
                installed = true;
                break;
            }
        }
    }
    assert!(installed, "epoch change did not happen over threads");
    // A write still commits.
    rt.inject(
        NodeId(0),
        ClientRequest::Write {
            id: 1,
            write: PartialWrite::new([(0, Bytes::from_static(b"post-crash"))]),
        },
    );
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut committed = false;
    while std::time::Instant::now() < deadline {
        if let Some((_, ProtocolEvent::WriteOk { id: 1, .. })) =
            rt.recv_output(Duration::from_millis(200))
        {
            committed = true;
            break;
        }
    }
    assert!(committed);
    rt.shutdown();
}
