//! Tracing must be *observationally free*: enabling a sink may not change
//! a single protocol-visible byte. The Lamport counter ticks on sends and
//! the per-node trace sequence ticks on every `ctx.trace()` call whether
//! the sink is a ring or the no-op — both are excluded from journals and
//! digests — so a traced run and an untraced run of the same seed must
//! produce byte-identical journals, replay verdicts, state digests, and
//! output streams. If this test fails, tracing has leaked into protocol
//! state and every "debug with the flight recorder" session becomes a
//! heisenbug hunt.

use std::sync::Arc;

use bytes::Bytes;
use coterie_base::SimDuration;
use coterie_core::{ClientRequest, PartialWrite, ProtocolConfig, Rng64, StepDriver};
use coterie_quorum::{GridCoterie, NodeId};

const N: usize = 4;
const SEED: u64 = 0xC07E41E;
const SCHEDULE_SEED: u64 = 42;
const STEPS: usize = 140;

/// The same seeded workload as `determinism.rs`, parameterized on whether
/// a trace ring is attached. Returns the canonical *protocol* rendering
/// only — journal bytes, replay verdicts, digest, outputs — deliberately
/// excluding the trace itself (that side is covered by `determinism.rs`).
fn run_protocol_canonical(traced: bool) -> String {
    let rule: Arc<dyn coterie_quorum::CoterieRule> = Arc::new(GridCoterie::new());
    let config = ProtocolConfig::new(rule, N).pages(4).rng_seed(SEED);
    let mut driver = StepDriver::new(N, config);
    if traced {
        driver.enable_tracing(1 << 16);
    }
    for (id, node, page) in [(1u64, 0u32, 0u16), (2, 1, 1), (3, 2, 0), (4, 0, 2)] {
        driver.inject(
            NodeId(node),
            ClientRequest::Write {
                id,
                write: PartialWrite::new([(page, Bytes::copy_from_slice(b"payload"))]),
            },
        );
    }
    driver.inject(NodeId(3), ClientRequest::Read { id: 5 });

    let mut schedule = Rng64::new(SCHEDULE_SEED);
    for _ in 0..STEPS {
        let msgs = driver.pending_messages().len();
        let timers = driver.pending_timers().len();
        let fault_slots = 4;
        let total = msgs + timers + fault_slots;
        let pick = schedule.below(total as u64) as usize;
        if pick < msgs {
            driver.deliver(pick);
        } else if pick < msgs + timers {
            driver.fire(pick - msgs);
        } else {
            let node = NodeId(((pick - msgs - timers) % 2) as u32);
            if driver.is_down(node) {
                driver.recover(node);
            } else {
                driver.crash(node);
            }
        }
    }
    for id in 0..N as u32 {
        if driver.is_down(NodeId(id)) {
            driver.recover(NodeId(id));
        }
    }
    driver.run_for(SimDuration::from_secs(30));

    let mut out = String::new();
    for id in 0..N as u32 {
        let node = NodeId(id);
        let journal = driver.journal(node);
        let replay = driver.replay_checked(node);
        out.push_str(&format!(
            "node={id};appended={};bytes={};verdict={:?};replayed={:?};\n",
            journal.appended_total(),
            hex(journal.bytes()),
            replay.verdict,
            driver.replay_journal(node),
        ));
    }
    out.push_str(&format!(
        "digest={:016x};outputs={:?};\n",
        driver.state_digest(),
        driver.outputs(),
    ));
    if traced {
        // Sanity that the traced arm actually recorded something — a
        // pass where tracing silently failed to attach would prove
        // nothing about sink-freedom.
        let merged = driver.merged_trace();
        assert!(
            !merged.is_empty(),
            "traced run produced no trace records; the comparison is vacuous"
        );
        let jsonl = coterie_core::render_jsonl(&merged);
        assert_eq!(jsonl.lines().count(), merged.len());
    }
    out
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[test]
fn enabled_and_disabled_sinks_produce_identical_journals() {
    let untraced = run_protocol_canonical(false);
    let traced = run_protocol_canonical(true);
    assert!(!untraced.is_empty());
    assert_eq!(
        untraced, traced,
        "attaching a trace ring changed protocol-visible bytes — tracing \
         is supposed to be observationally free (journals, digests, and \
         outputs must not depend on whether a sink is installed)"
    );
}
