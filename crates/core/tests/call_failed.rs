//! `on_call_failed` coverage: what a coordinator does when an RPC bounces
//! off a crashed peer, exercised through the sans-I/O [`StepDriver`]
//! (delivering a message to a down node steps the *sender* with
//! [`Input::CallFailed`]).
//!
//! Two paths with non-trivial bounce semantics are covered here:
//!
//! * **Propagation** — a bounced `PropOffer`/`PropData` clears the
//!   in-flight attempt, bumps the per-target failure count, and re-arms
//!   the kick timer; once the target recovers, propagation completes.
//! * **Election (bully)** — bounced `Election` challenges are absorbed
//!   (an unreachable higher node simply never answers) and the challenge
//!   timeout then elects the caller.

use std::sync::Arc;

use bytes::Bytes;
use coterie_base::SimDuration;
use coterie_core::{
    ClientRequest, MsgClass, PartialWrite, ProtocolConfig, ProtocolEvent, StepDriver, Timer,
};
use coterie_quorum::{MajorityCoterie, NodeId};

/// Performs the single next event exactly as [`StepDriver::run_for`]
/// would (messages in FIFO order first, then the earliest timer), so a
/// test can stop between events. Returns false when nothing is pending.
fn step_once(driver: &mut StepDriver) -> bool {
    if !driver.pending_messages().is_empty() {
        driver.deliver(0);
        return true;
    }
    let Some((i, _)) = driver
        .pending_timers()
        .iter()
        .enumerate()
        .min_by_key(|(_, t)| (t.fire_at, t.node.0))
    else {
        return false;
    };
    driver.fire(i);
    true
}

/// Steps the driver until `done` holds, failing the test if it doesn't
/// within `bound` events.
fn run_until(driver: &mut StepDriver, bound: usize, done: impl Fn(&StepDriver) -> bool) {
    for _ in 0..bound {
        if done(driver) {
            return;
        }
        assert!(
            step_once(driver),
            "cluster went quiescent before condition held"
        );
    }
    panic!("condition did not hold within {bound} events");
}

#[test]
fn bounced_propagation_offer_retries_until_target_recovers() {
    let config = ProtocolConfig::new(Arc::new(MajorityCoterie::new()), 3)
        .pages(4)
        .static_mode();
    let mut driver = StepDriver::new(3, config);
    let write = |id: u64, payload: &[u8]| ClientRequest::Write {
        id,
        write: PartialWrite::new([(0, Bytes::copy_from_slice(payload))]),
    };
    let write_done = |d: &StepDriver, want: u64| {
        d.outputs()
            .iter()
            .any(|(_, _, e)| matches!(e, ProtocolEvent::WriteOk { id, .. } if *id == want))
    };

    // Write v1 while node 2 is down: the quorum {0, 1} commits without it.
    let target = NodeId(2);
    driver.crash(target);
    driver.advance(SimDuration::from_millis(1));
    driver.inject(NodeId(0), write(1, b"one"));
    run_until(&mut driver, 500, |d| write_done(d, 1));

    // Node 2 comes back one version behind; the next write's permission
    // poll classifies it STALE, marks it, and the good replicas owe it a
    // background propagation.
    driver.recover(target);
    driver.advance(SimDuration::from_millis(1));
    driver.inject(NodeId(0), write(2, b"two"));
    run_until(&mut driver, 500, |d| {
        write_done(d, 2)
            && d.node(target).durable.stale
            && (0..3).any(|n| !d.node(NodeId(n)).vol.propagator.remaining.is_empty())
    });

    // Crash the stale target: the next PropOffer (or PropData) bounces.
    driver.crash(target);
    let bounced = |d: &StepDriver, n: NodeId| d.node(n).stats.msgs_bounced(MsgClass::Propagation);
    run_until(&mut driver, 500, |d| {
        (0..3).any(|n| bounced(d, NodeId(n)) >= 1)
    });
    let source = (0..3)
        .map(NodeId)
        .find(|&n| bounced(&driver, n) >= 1)
        .expect("checked by run_until");

    // The bounce must not abandon the target: the failure is counted and
    // the target stays on the work list for a later retry.
    let prop = &driver.node(source).vol.propagator;
    assert!(
        prop.attempts.get(&target).copied().unwrap_or(0) >= 1,
        "bounced offer should bump the per-target attempt count"
    );
    assert!(
        prop.remaining.contains(target),
        "bounced target must stay on the propagation work list"
    );

    // Once the target is back, a retry brings it current.
    driver.recover(target);
    driver.run_for(SimDuration::from_secs(60));
    assert!(
        driver.outputs().iter().any(
            |(_, _, e)| matches!(e, ProtocolEvent::Propagated { target: t, .. } if *t == target)
        ),
        "recovered target was never propagated to"
    );
    let src_version = driver.node(source).durable.version;
    let tgt = &driver.node(target).durable;
    assert!(!tgt.stale, "propagated replica must be current");
    assert_eq!(tgt.version, src_version);
    assert_eq!(
        tgt.object.digest(),
        driver.node(source).durable.object.digest(),
        "propagated contents must match the source"
    );
}

#[test]
fn bounced_election_challenges_let_the_caller_win_by_timeout() {
    let config = ProtocolConfig::new(Arc::new(MajorityCoterie::new()), 3).bully_election();
    let mut driver = StepDriver::new(3, config);

    // Both higher-named nodes are down; node 0 notices epoch-check
    // silence at its next tick and challenges them.
    driver.crash(NodeId(1));
    driver.crash(NodeId(2));
    let tick = driver
        .pending_timers()
        .iter()
        .position(|t| t.node == NodeId(0) && matches!(t.timer, Timer::EpochTick))
        .expect("node 0 armed its epoch tick at boot");
    driver.fire(tick);

    let challenges = driver
        .pending_messages()
        .iter()
        .filter(|env| matches!(env.msg, coterie_core::Msg::Election { .. }))
        .count();
    assert_eq!(
        challenges, 2,
        "bully must challenge every higher-named node"
    );

    // Deliver both challenges: the peers are down, so each delivery steps
    // node 0 with CallFailed instead. The bounces are counted and
    // absorbed — the round stays open, awaiting its timeout.
    while !driver.pending_messages().is_empty() {
        driver.deliver(0);
    }
    let node0 = driver.node(NodeId(0));
    assert_eq!(
        node0.stats.msgs_bounced(MsgClass::EpochCheck),
        2,
        "both bounced challenges must be counted"
    );
    assert!(
        node0.vol.election.in_flight.is_some(),
        "a bounced challenge must not abort the round"
    );
    assert_eq!(node0.vol.election.leader, None);

    // The answer window elapses with no Alive: node 0 wins.
    let timeout = driver
        .pending_timers()
        .iter()
        .position(|t| t.node == NodeId(0) && matches!(t.timer, Timer::ElectionTimeout { .. }))
        .expect("the challenge round armed a timeout");
    driver.fire(timeout);
    let node0 = driver.node(NodeId(0));
    assert_eq!(
        node0.vol.election.leader,
        Some(NodeId(0)),
        "with every higher node unreachable, the caller becomes leader"
    );
    assert!(node0.vol.election.in_flight.is_none());
}
