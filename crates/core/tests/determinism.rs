//! Byte-identical journal regression test — the engine's determinism
//! contract checked across *process boundaries*.
//!
//! `std::collections::HashMap` seeds its hash function randomly **per
//! process** (HashDoS protection), so any map iteration that leaks into
//! `Effect` ordering, `DurableDelta` contents, or digests can agree
//! between two runs in the *same* process — both runs see the same seed —
//! while silently diverging between processes. That is exactly the bug
//! class the `BTreeMap`/`BTreeSet` migration in `coterie-core` eliminates
//! (and `coterie-lint`'s `determinism` rule now forbids reintroducing):
//! ordered collections iterate in key order, which depends only on the
//! data.
//!
//! The in-process test (two fresh drivers, same seed) would pass even with
//! hash maps; the cross-process test (this binary re-executed twice, via
//! `COTERIE_DETERMINISM_EMIT`) is the one that catches per-process seed
//! leaks, so both are asserted.

use std::sync::Arc;

use bytes::Bytes;
use coterie_base::SimDuration;
use coterie_core::{ClientRequest, PartialWrite, ProtocolConfig, Rng64, StepDriver};
use coterie_quorum::{GridCoterie, NodeId};

const N: usize = 4;
const SEED: u64 = 0xC07E41E;
const SCHEDULE_SEED: u64 = 42;
const STEPS: usize = 140;
const EMIT_ENV: &str = "COTERIE_DETERMINISM_EMIT";
const MARKER: &str = "JOURNAL-FNV1A=";

/// Runs a fixed seeded workload (writes, a read, crashes, recoveries) and
/// serializes every node's journal + final state + merged trace into one
/// canonical string. Tracing is enabled with an unbounded-in-practice ring
/// so the trace JSONL is part of the cross-process determinism contract:
/// Lamport stamps, per-node sequence numbers, and merge order must all
/// reproduce byte-for-byte.
fn run_and_serialize() -> String {
    let rule: Arc<dyn coterie_quorum::CoterieRule> = Arc::new(GridCoterie::new());
    let config = ProtocolConfig::new(rule, N).pages(4).rng_seed(SEED);
    let mut driver = StepDriver::new(N, config);
    driver.enable_tracing(1 << 16);
    for (id, node, page) in [(1u64, 0u32, 0u16), (2, 1, 1), (3, 2, 0), (4, 0, 2)] {
        driver.inject(
            NodeId(node),
            ClientRequest::Write {
                id,
                write: PartialWrite::new([(page, Bytes::copy_from_slice(b"payload"))]),
            },
        );
    }
    driver.inject(NodeId(3), ClientRequest::Read { id: 5 });

    // The same weighted event schedule as the crash-replay property, but
    // with pinned seeds: deliveries and timers interleaved with fail-stop
    // cycles on two nodes.
    let mut schedule = Rng64::new(SCHEDULE_SEED);
    for _ in 0..STEPS {
        let msgs = driver.pending_messages().len();
        let timers = driver.pending_timers().len();
        let fault_slots = 4;
        let total = msgs + timers + fault_slots;
        let pick = schedule.below(total as u64) as usize;
        if pick < msgs {
            driver.deliver(pick);
        } else if pick < msgs + timers {
            driver.fire(pick - msgs);
        } else {
            let node = NodeId(((pick - msgs - timers) % 2) as u32);
            if driver.is_down(node) {
                driver.recover(node);
            } else {
                driver.crash(node);
            }
        }
    }
    for id in 0..N as u32 {
        if driver.is_down(NodeId(id)) {
            driver.recover(NodeId(id));
        }
    }
    driver.run_for(SimDuration::from_secs(30));

    // Canonical rendering: per-node journal *bytes* (the framed v2 format,
    // hex-encoded, so framing and checksums are part of the contract), the
    // checked-replay verdict, the replayed durable state, the cluster
    // digest, and every output event.
    let mut out = String::new();
    for id in 0..N as u32 {
        let node = NodeId(id);
        let journal = driver.journal(node);
        let replay = driver.replay_checked(node);
        out.push_str(&format!(
            "node={id};appended={};bytes={};verdict={:?};replayed={:?};\n",
            journal.appended_total(),
            hex(journal.bytes()),
            replay.verdict,
            driver.replay_journal(node),
        ));
    }
    out.push_str(&format!(
        "digest={:016x};outputs={:?};\n",
        driver.state_digest(),
        driver.outputs(),
    ));
    out.push_str(&coterie_core::render_jsonl(&driver.merged_trace()));
    out
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Two fresh drivers in the same process must serialize identically.
/// (Necessary but not sufficient: a per-process hash seed would still
/// agree here — see the cross-process test below.)
#[test]
fn same_seed_same_journal_in_process() {
    let a = run_and_serialize();
    let b = run_and_serialize();
    assert!(!a.is_empty());
    assert_eq!(a, b, "two in-process runs of the same seed diverged");
}

/// Child mode: when re-executed with `COTERIE_DETERMINISM_EMIT` set, this
/// "test" prints the journal digest for the parent to compare. Without the
/// env var it is a no-op so normal `cargo test` runs stay quiet.
#[test]
fn child_emit_journal_digest() {
    if std::env::var_os(EMIT_ENV).is_none() {
        return;
    }
    let bytes = run_and_serialize();
    println!(
        "{MARKER}{:016x};len={}",
        fnv1a(bytes.as_bytes()),
        bytes.len()
    );
}

/// The real regression test: two *independent processes* running the same
/// seed must produce byte-identical journals. Each child gets a fresh
/// HashMap hash seed, so any hash-order leak into effects or deltas shows
/// up as differing digests here even when the in-process test passes.
#[test]
fn same_seed_same_journal_across_processes() {
    let exe = std::env::current_exe().expect("test binary path");
    let run_child = || {
        let output = std::process::Command::new(&exe)
            .args(["--exact", "child_emit_journal_digest", "--nocapture"])
            .env(EMIT_ENV, "1")
            .output()
            .expect("spawn child test process");
        assert!(
            output.status.success(),
            "child run failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
        // The libtest harness may print "test <name> ... " on the same
        // line before the marker, so search rather than prefix-match.
        stdout
            .lines()
            .find_map(|l| l.find(MARKER).map(|at| l[at + MARKER.len()..].to_string()))
            .unwrap_or_else(|| panic!("no {MARKER} line in child output:\n{stdout}"))
    };

    let first = run_child();
    let second = run_child();
    assert_eq!(
        first, second,
        "two independent processes produced different journal bytes \
         for the same seed — a per-process source (hash-map order, wall \
         clock, ambient RNG) is leaking into the engine"
    );

    // The parent's own in-process run must match the children too.
    let mine = run_and_serialize();
    let mine_line = format!("{:016x};len={}", fnv1a(mine.as_bytes()), mine.len());
    assert_eq!(mine_line, first, "parent and child runs diverged");
}
