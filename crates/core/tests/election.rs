//! Tests of the bully election ([7], §4.3) as the epoch-check initiator:
//! the highest live node wins, epoch checks keep running, failover works,
//! and a recovering higher node reclaims the role.

use bytes::Bytes;
use coterie_core::{ClientRequest, PartialWrite, ProtocolConfig, ProtocolEvent, ReplicaNode};
use coterie_quorum::{GridCoterie, NodeId};
use coterie_simnet::{Sim, SimConfig, SimDuration};
use std::sync::Arc;

fn bully_cluster(n: usize, seed: u64) -> Sim<ReplicaNode> {
    let config = ProtocolConfig::new(Arc::new(GridCoterie::new()), n)
        .check_period(SimDuration::from_secs(2))
        .bully_election();
    Sim::new(
        n,
        SimConfig {
            seed,
            ..Default::default()
        },
        |id| ReplicaNode::new(id, config.clone()),
    )
}

fn leader_of(sim: &Sim<ReplicaNode>, id: u32) -> Option<NodeId> {
    sim.node(NodeId(id)).vol.election.leader
}

#[test]
fn highest_node_becomes_coordinator() {
    let mut sim = bully_cluster(5, 1);
    sim.run_for(SimDuration::from_secs(20));
    // Everyone agrees the highest name leads.
    for id in 0..5u32 {
        assert_eq!(
            leader_of(&sim, id),
            Some(NodeId(4)),
            "node {id} disagrees on the leader"
        );
    }
    // And epoch checking actually runs (the leader's checks suppress
    // everyone else's elections).
    assert!(sim.node(NodeId(4)).vol.last_epoch_check_seen.is_some());
}

#[test]
fn epoch_checks_adapt_under_bully_leadership() {
    let mut sim = bully_cluster(9, 2);
    sim.run_for(SimDuration::from_secs(12)); // settle leadership
    sim.crash_now(NodeId(3));
    sim.run_for(SimDuration::from_secs(12));
    let evs: Vec<_> = sim.take_outputs();
    assert!(
        evs.iter().any(|(_, _, e)| matches!(
            e,
            ProtocolEvent::EpochInstalled { members, .. } if members.len() == 8
        )),
        "epoch must shrink under bully coordination"
    );
    // Writes work.
    sim.schedule_external(
        sim.now(),
        NodeId(0),
        ClientRequest::Write {
            id: 1,
            write: PartialWrite::new([(0, Bytes::from_static(b"x"))]),
        },
    );
    sim.run_for(SimDuration::from_secs(2));
    assert!(sim
        .take_outputs()
        .iter()
        .any(|(_, _, e)| matches!(e, ProtocolEvent::WriteOk { id: 1, .. })));
}

#[test]
fn leadership_fails_over_when_the_leader_dies() {
    let mut sim = bully_cluster(5, 3);
    sim.run_for(SimDuration::from_secs(15));
    assert_eq!(leader_of(&sim, 0), Some(NodeId(4)));
    sim.crash_now(NodeId(4));
    // Silence triggers elections; node 3 should take over.
    sim.run_for(SimDuration::from_secs(25));
    for id in 0..4u32 {
        assert_eq!(
            leader_of(&sim, id),
            Some(NodeId(3)),
            "node {id} should follow the new leader"
        );
    }
    // Epoch has adapted to exclude the dead leader.
    assert_eq!(sim.node(NodeId(0)).durable.elist.len(), 4);
}

#[test]
fn recovered_higher_node_reclaims_leadership() {
    let mut sim = bully_cluster(5, 4);
    sim.run_for(SimDuration::from_secs(15));
    sim.crash_now(NodeId(4));
    sim.run_for(SimDuration::from_secs(25));
    assert_eq!(leader_of(&sim, 0), Some(NodeId(3)));
    sim.recover_now(NodeId(4));
    // The recovering node sees a lower coordinator and bullies the role
    // back (its own ticks start elections; node 3's Coordinator messages
    // provoke it).
    sim.run_for(SimDuration::from_secs(40));
    for id in 0..5u32 {
        assert_eq!(
            leader_of(&sim, id),
            Some(NodeId(4)),
            "node {id} should re-follow the recovered highest node"
        );
    }
    // And the epoch re-includes it.
    assert_eq!(sim.node(NodeId(0)).durable.elist.len(), 5);
}
