//! Targeted tests of the §4.2 propagation protocol: incremental log
//! shipping, the snapshot fallback when the log has been trimmed, the
//! three-way offer handshake, and the locking-mode ablation.

use bytes::Bytes;
use coterie_core::{ClientRequest, PartialWrite, ProtocolConfig, ProtocolEvent, ReplicaNode};
use coterie_quorum::{GridCoterie, NodeId};
use coterie_simnet::{Sim, SimConfig, SimDuration, SimTime};
use std::sync::Arc;

fn run_with_config(config: ProtocolConfig, seed: u64, writes: u64) -> Sim<ReplicaNode> {
    let n = config.n_replicas;
    let mut sim = Sim::new(
        n,
        SimConfig {
            seed,
            ..Default::default()
        },
        |id| ReplicaNode::new(id, config.clone()),
    );
    for i in 0..writes {
        sim.schedule_external(
            SimTime(i * 250_000),
            NodeId((i % n as u64) as u32),
            ClientRequest::Write {
                id: i,
                write: PartialWrite::new([((i % 4) as u16, Bytes::from(format!("payload-{i}")))]),
            },
        );
    }
    sim.run_for(SimDuration::from_secs(writes / 4 + 20));
    sim
}

/// The protocol's actual guarantee: propagation clears every stale flag
/// (replicas that were never marked may legitimately sit behind), at least
/// a write quorum's worth of replicas hold the newest version, and all the
/// newest-version holders agree on content.
fn assert_propagation_converged(sim: &Sim<ReplicaNode>, n: usize, version: u64) {
    let versions: Vec<u64> = (0..n as u32)
        .map(|i| sim.node(NodeId(i)).durable.version)
        .collect();
    for i in 0..n as u32 {
        assert!(
            !sim.node(NodeId(i)).durable.stale,
            "replica {i} still stale; versions {versions:?}"
        );
    }
    let holders: Vec<u32> = (0..n as u32)
        .filter(|&i| sim.node(NodeId(i)).durable.version == version)
        .collect();
    assert!(
        holders.len() >= 5,
        "too few replicas at v{version}: {versions:?}"
    );
    let digest = sim.node(NodeId(holders[0])).durable.object.digest();
    for &h in &holders[1..] {
        assert_eq!(
            sim.node(NodeId(h)).durable.object.digest(),
            digest,
            "replica {h} diverged in content"
        );
    }
}

#[test]
fn incremental_log_shipping_converges_everyone() {
    let config = ProtocolConfig::new(Arc::new(GridCoterie::new()), 9).log_capacity(64);
    let sim = run_with_config(config, 1, 24);
    assert_propagation_converged(&sim, 9, 24);
}

#[test]
fn trimmed_log_falls_back_to_snapshots() {
    // log_capacity(1) guarantees any replica more than one write behind
    // needs the snapshot path; convergence must still happen.
    let config = ProtocolConfig::new(Arc::new(GridCoterie::new()), 9).log_capacity(1);
    let sim = run_with_config(config, 2, 24);
    assert_propagation_converged(&sim, 9, 24);
}

#[test]
fn paper_locking_mode_also_converges() {
    let config = ProtocolConfig::new(Arc::new(GridCoterie::new()), 9).locking_propagation();
    let sim = run_with_config(config, 3, 24);
    assert_propagation_converged(&sim, 9, 24);
}

#[test]
fn propagation_source_crash_does_not_leave_target_stuck() {
    let config = ProtocolConfig::new(Arc::new(GridCoterie::new()), 9);
    let n = 9;
    let mut sim = Sim::new(
        n,
        SimConfig {
            seed: 4,
            ..Default::default()
        },
        |id| ReplicaNode::new(id, config.clone()),
    );
    // A few writes to create stale marks and kick off propagation.
    for i in 0..6u64 {
        sim.schedule_external(
            SimTime(i * 200_000),
            NodeId(i as u32),
            ClientRequest::Write {
                id: i,
                write: PartialWrite::new([(0, Bytes::from(format!("w{i}")))]),
            },
        );
    }
    // Crash every node that could be an early propagation source shortly
    // after the last write, then recover them.
    for v in 0..4u32 {
        sim.schedule_crash(SimTime(1_250_000), NodeId(v));
        sim.schedule_recover(SimTime(4_000_000), NodeId(v));
    }
    sim.run_for(SimDuration::from_secs(40));
    // Everyone eventually converges; nobody is left holding a propagation
    // lock or an in-doubt incoming transfer.
    for i in 0..n as u32 {
        let node = sim.node(NodeId(i));
        assert!(node.vol.incoming_prop.is_none(), "node {i} stuck incoming");
        assert!(!node.durable.stale, "node {i} still stale");
    }
    // System still writable.
    sim.take_outputs();
    sim.schedule_external(
        sim.now(),
        NodeId(5),
        ClientRequest::Write {
            id: 99,
            write: PartialWrite::new([(1, Bytes::from_static(b"post"))]),
        },
    );
    sim.run_for(SimDuration::from_secs(2));
    assert!(sim
        .take_outputs()
        .iter()
        .any(|(_, _, e)| matches!(e, ProtocolEvent::WriteOk { id: 99, .. })));
}

#[test]
fn stale_replica_never_serves_reads() {
    // Force a replica stale, then point a read's fetch at the cluster: the
    // read must come back with the newest version, never the stale copy.
    let config = ProtocolConfig::new(Arc::new(GridCoterie::new()), 9)
        // Disable propagation-by-delay so staleness persists during the test.
        .check_period(SimDuration::from_secs(600));
    let n = 9;
    let mut sim = Sim::new(
        n,
        SimConfig {
            seed: 6,
            ..Default::default()
        },
        |id| {
            let mut cfg = config.clone();
            cfg.propagation_retry = SimDuration::from_secs(600);
            cfg.propagation_jitter = SimDuration::from_secs(600);
            ReplicaNode::new(id, cfg)
        },
    );
    for i in 0..8u64 {
        sim.schedule_external(
            SimTime(i * 200_000),
            NodeId((i % 9) as u32),
            ClientRequest::Write {
                id: i,
                write: PartialWrite::new([(0, Bytes::from(format!("w{i}")))]),
            },
        );
    }
    sim.run_for(SimDuration::from_secs(5));
    // With propagation effectively disabled there must be stale replicas.
    let stale_count = (0..9u32)
        .filter(|&i| sim.node(NodeId(i)).durable.stale)
        .count();
    assert!(stale_count > 0, "expected lingering stale replicas");
    sim.take_outputs();
    // Reads from every coordinator all see version 8.
    for (j, reader) in (0..9u32).enumerate() {
        sim.schedule_external(
            sim.now(),
            NodeId(reader),
            ClientRequest::Read { id: 100 + j as u64 },
        );
    }
    sim.run_for(SimDuration::from_secs(3));
    let evs = sim.take_outputs();
    let mut reads = 0;
    for (_, _, e) in &evs {
        if let ProtocolEvent::ReadOk { version, .. } = e {
            assert_eq!(*version, 8, "a read saw a non-latest version");
            reads += 1;
        }
    }
    assert!(
        reads >= 7,
        "most reads should complete, got {reads}: {evs:?}"
    );
}
