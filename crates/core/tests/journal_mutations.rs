//! Adversarial journal-mutation property: checked replay of a damaged
//! journal must never panic, and damage must never go unnoticed.
//!
//! Each case records a real journal by running a seeded workload, then
//! replays **every byte-prefix** (simulating a crash after any number of
//! bytes reached disk) and **every single-bit flip** (simulating silent
//! media corruption anywhere) of it. For all mutations the replay must
//! return a verdict rather than panic; and since the recorded journal is
//! fully committed, every strict mutation must be *detected* — a verdict
//! other than `Clean` — because an undetected corruption is exactly the
//! failure mode the checksummed frame format exists to rule out.

use std::sync::Arc;

use bytes::Bytes;
use coterie_base::SimDuration;
use coterie_core::{
    ClientRequest, FramedJournal, PartialWrite, ProtocolConfig, ReplayVerdict, StepDriver,
};
use coterie_quorum::{GridCoterie, NodeId};
use proptest::prelude::*;

const N: usize = 4;

/// Runs a small committed workload and returns the busiest journal along
/// with the protocol config its pristine state derives from.
fn recorded_journal(seed: u64) -> (Vec<u8>, ProtocolConfig) {
    let config = ProtocolConfig::new(Arc::new(GridCoterie::new()), N)
        .pages(2)
        .rng_seed(seed);
    let mut driver = StepDriver::new(N, config.clone());
    for (id, node, page) in [(1u64, 0u32, 0u16), (2, 1, 1)] {
        driver.inject(
            NodeId(node),
            ClientRequest::Write {
                id,
                write: PartialWrite::new([(page, Bytes::from_static(b"mutate-me"))]),
            },
        );
    }
    driver.run_for(SimDuration::from_secs(10));
    let busiest = (0..N as u32)
        .map(NodeId)
        .max_by_key(|&i| driver.journal(i).bytes().len())
        .unwrap();
    (driver.journal(busiest).bytes().to_vec(), config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_prefix_and_bit_flip_replays_without_panic(seed in 0u64..1 << 48) {
        let (bytes, config) = recorded_journal(seed);
        prop_assert!(bytes.len() > 16, "workload recorded nothing");

        // The unmutated journal is the control: it must replay clean.
        let full = FramedJournal::from_bytes(bytes.clone()).replay_checked(&config);
        prop_assert!(
            matches!(full.verdict, ReplayVerdict::Clean),
            "control replay not clean: {:?}",
            full.verdict
        );

        // Every byte-prefix: a crash after any number of bytes hit disk.
        // The journal is fully committed, so every strict prefix is
        // missing acknowledged bytes and must be flagged.
        for cut in 0..bytes.len() {
            let replay =
                FramedJournal::from_bytes(bytes[..cut].to_vec()).replay_checked(&config);
            prop_assert!(
                !matches!(replay.verdict, ReplayVerdict::Clean),
                "prefix of {cut}/{} bytes replayed Clean",
                bytes.len()
            );
        }

        // Every single-bit flip: silent corruption anywhere — header,
        // commit count, frame lengths, checksums, payloads — must be
        // caught by the magic check, the header CRC, or a record CRC.
        for i in 0..bytes.len() {
            for bit in 0..8u8 {
                let mut damaged = bytes.clone();
                damaged[i] ^= 1 << bit;
                let replay = FramedJournal::from_bytes(damaged).replay_checked(&config);
                prop_assert!(
                    !matches!(replay.verdict, ReplayVerdict::Clean),
                    "flip of byte {i} bit {bit} went undetected"
                );
            }
        }

        // Length-field overflow: every record's len prefix rewritten to
        // values chosen to wrap `pos + 8 + len` (catastrophically on
        // 32-bit hosts, where `len as usize` keeps all 32 bits) or to run
        // just past the end of the buffer. Replay must quarantine, never
        // panic and never wrap back into the committed prefix and go
        // Clean; tail truncation on the same bytes must hold its
        // leave-it-alone contract.
        let mut pos = 16usize; // one past the journal header
        while pos + 8 <= bytes.len() {
            let len =
                u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            for evil in [
                u32::MAX,
                u32::MAX - 7,
                1 << 31,
                (bytes.len() as u32).saturating_add(1),
            ] {
                let mut damaged = bytes.clone();
                damaged[pos..pos + 4].copy_from_slice(&evil.to_le_bytes());
                let replay =
                    FramedJournal::from_bytes(damaged.clone()).replay_checked(&config);
                prop_assert!(
                    !matches!(replay.verdict, ReplayVerdict::Clean),
                    "len prefix at {pos} patched to {evil:#x} replayed Clean"
                );
                // The committed prefix no longer parses, so truncate_tail
                // must refuse to drop anything (quarantine recovery owns
                // this journal now).
                let mut journal = FramedJournal::from_bytes(damaged);
                prop_assert_eq!(
                    journal.truncate_tail(),
                    0,
                    "truncate_tail dropped bytes from an unparseable prefix"
                );
            }
            pos += 8 + len;
        }
    }
}
