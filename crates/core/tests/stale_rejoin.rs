//! Scripted storage-fault recovery scenarios over the [`StepDriver`]:
//!
//! * a bit-flipped journal quarantines on replay, the replica boots via
//!   the stale-rejoin handshake, and the propagation machinery repairs it
//!   back to current — acknowledged writes survive single-replica
//!   corruption end to end;
//! * a torn final append truncates cleanly and boots normally (the torn
//!   record was never acknowledged);
//! * a failed append fail-stops the node without corrupting anything.

use std::sync::Arc;

use bytes::Bytes;
use coterie_base::{SimDuration, SimTime};
use coterie_core::{
    ClientRequest, Effect, FaultKind, Input, Msg, PartialWrite, ProtocolConfig, ProtocolEvent,
    ReplayVerdict, ReplicaNode, StateTuple, StepDriver,
};
use coterie_quorum::{GridCoterie, NodeId};

const N: usize = 4;

fn cluster(seed: u64) -> StepDriver {
    let config = ProtocolConfig::new(Arc::new(GridCoterie::new()), N)
        .pages(4)
        .rng_seed(seed);
    StepDriver::new(N, config)
}

fn write(driver: &mut StepDriver, coordinator: u32, id: u64, page: u16, text: &'static [u8]) {
    driver.inject(
        NodeId(coordinator),
        ClientRequest::Write {
            id,
            write: PartialWrite::new([(page, Bytes::from_static(text))]),
        },
    );
    driver.run_for(SimDuration::from_secs(5));
    assert!(
        driver
            .outputs()
            .iter()
            .any(|(_, _, e)| matches!(e, ProtocolEvent::WriteOk { id: got, .. } if *got == id)),
        "write {id} did not commit"
    );
}

/// The acceptance scenario: corrupt one replica's journal behind its back,
/// crash it, and watch checked replay quarantine the journal, the boot
/// take the stale-rejoin path, and propagation repair the replica to the
/// cluster-current version.
#[test]
fn bit_flip_quarantines_then_rejoin_and_propagation_repair_to_current() {
    let mut driver = cluster(0xC0FFEE);
    let victim = NodeId(3);

    // Establish real committed state before the corruption.
    write(&mut driver, 0, 1, 0, b"first");
    write(&mut driver, 1, 2, 1, b"second");

    // The victim's next journal append silently flips one bit somewhere in
    // the journal, then more writes commit (the victim participates with
    // intact in-memory state; only its disk is damaged).
    driver.arm_storage_fault(victim, FaultKind::BitFlip);
    write(&mut driver, 3, 3, 2, b"third");
    write(&mut driver, 0, 4, 3, b"fourth");
    assert!(
        driver
            .fired_faults(victim)
            .iter()
            .any(|f| f.kind == FaultKind::BitFlip),
        "bit flip never fired; the victim persisted nothing"
    );

    // Crash the victim. Its journal must now fail checked replay.
    driver.crash(victim);
    let replay = driver.replay_checked(victim);
    assert!(
        matches!(replay.verdict, ReplayVerdict::Quarantined { .. }),
        "expected quarantine, got {:?}",
        replay.verdict
    );

    // Recovery goes through BootQuarantined: the replica re-enters the
    // cluster stale via the rejoin handshake instead of trusting its disk.
    driver.recover(victim);
    driver.run_for(SimDuration::from_secs(60));
    assert!(
        driver
            .outputs()
            .iter()
            .any(|(_, node, e)| *node == victim && matches!(e, ProtocolEvent::Rejoined { .. })),
        "victim never completed the stale-rejoin handshake"
    );

    // Propagation must then repair the victim back to current: same
    // version as the freshest replica, not stale, byte-identical object.
    let current = (0..N as u32)
        .map(|i| driver.node(NodeId(i)).durable.version)
        .max()
        .unwrap();
    let durable = &driver.node(victim).durable;
    assert_eq!(
        durable.version, current,
        "victim not repaired to the cluster-current version"
    );
    assert!(!durable.stale, "victim still stale after propagation");
    let reference = (0..N as u32)
        .map(NodeId)
        .find(|&i| i != victim && !driver.node(i).durable.stale)
        .expect("some intact replica is current");
    assert_eq!(
        durable.object.digest(),
        driver.node(reference).durable.object.digest(),
        "repaired object diverges from an intact current replica"
    );

    // And the repaired replica serves reads again.
    driver.inject(victim, ClientRequest::Read { id: 99 });
    driver.run_for(SimDuration::from_secs(5));
    assert!(driver
        .outputs()
        .iter()
        .any(|(_, _, e)| matches!(e, ProtocolEvent::ReadOk { id: 99, .. })));
}

/// A torn final append is a clean crash: the record was never
/// acknowledged, so replay truncates it and the node boots normally —
/// no quarantine, no rejoin.
#[test]
fn torn_append_truncates_and_boots_normally() {
    let mut driver = cluster(0x7042);
    write(&mut driver, 0, 1, 0, b"base");

    driver.arm_storage_fault(NodeId(2), FaultKind::TornWrite);
    // The torn append fail-stops node 2 mid-write; the cluster commits
    // around it (grid quorums on 4 nodes survive one failure).
    write(&mut driver, 0, 2, 1, b"survives");
    assert!(driver.is_down(NodeId(2)), "torn write should fail-stop");
    assert!(matches!(
        driver.replay_checked(NodeId(2)).verdict,
        ReplayVerdict::TornTail { dropped_bytes } if dropped_bytes > 0
    ));

    driver.recover(NodeId(2));
    driver.run_for(SimDuration::from_secs(30));
    // Normal boot: no rejoin handshake needed, and the journal is whole
    // again (the torn tail was truncated at recovery).
    assert!(!driver
        .outputs()
        .iter()
        .any(|(_, node, e)| *node == NodeId(2) && matches!(e, ProtocolEvent::Rejoined { .. })));
    assert!(matches!(
        driver.replay_checked(NodeId(2)).verdict,
        ReplayVerdict::Clean
    ));
    assert!(!driver.node(NodeId(2)).durable.stale);
}

/// A failed append writes nothing: the node fail-stops with its journal
/// exactly as it was, and recovery is an ordinary clean boot.
#[test]
fn append_failure_is_fail_stop_with_clean_journal() {
    let mut driver = cluster(0xFA11);
    write(&mut driver, 0, 1, 0, b"base");

    let before = driver.journal(NodeId(1)).bytes().to_vec();
    driver.arm_storage_fault(NodeId(1), FaultKind::AppendFail);
    write(&mut driver, 0, 2, 1, b"second");
    assert!(driver.is_down(NodeId(1)), "failed append should fail-stop");
    assert_eq!(
        driver.journal(NodeId(1)).bytes(),
        &before[..],
        "a failed append must leave no bytes behind"
    );
    assert!(matches!(
        driver.replay_checked(NodeId(1)).verdict,
        ReplayVerdict::Clean
    ));

    driver.recover(NodeId(1));
    driver.run_for(SimDuration::from_secs(30));
    assert!(!driver.node(NodeId(1)).durable.stale);
}

/// Drives a lone engine through the rejoin handshake with hand-crafted
/// peer answers, returning the desired version it adopts.
fn rejoin_dversion_with(answers: Vec<StateTuple>) -> u64 {
    let config = ProtocolConfig::new(Arc::new(GridCoterie::new()), N).pages(2);
    let mut node = ReplicaNode::new(NodeId(3), config);
    let now = SimTime::ZERO;
    let effects = node.step(now, Input::BootQuarantined);
    let op = effects
        .iter()
        .find_map(|e| match e {
            Effect::Send {
                msg: Msg::RejoinQuery { op },
                ..
            } => Some(*op),
            _ => None,
        })
        .expect("a quarantined boot polls its peers");
    let mut dversion = None;
    for state in answers {
        let from = state.node;
        for effect in node.step(
            now,
            Input::Deliver {
                from,
                msg: Msg::RejoinInfo { op, state },
                lamport: 0,
            },
        ) {
            if let Effect::Output(ProtocolEvent::Rejoined { dversion: d, .. }) = effect {
                dversion = Some(d);
            }
        }
    }
    dversion.expect("a write quorum of answers completes the handshake")
}

fn answer(node: u32, version: u64, wlocked: bool, prepared_version: Option<u64>) -> StateTuple {
    StateTuple {
        node: NodeId(node),
        version,
        dversion: 0,
        stale: false,
        elist: (0..N as u32).map(NodeId).collect(),
        enumber: 0,
        last_good: Vec::new(),
        wlocked,
        prepared_version,
    }
}

/// The rejoin desired-version bound must cover not just committed writes
/// but the one write the lost journal suffix may have *voted for*: its
/// required participants answer the poll exclusively locked or holding a
/// prepared slot (they were all locked before this replica crashed, and
/// required participants never re-acquire an expired lock at prepare
/// time), so those reports bound the in-flight version.
#[test]
fn rejoin_bound_tracks_locks_and_prepared_slots() {
    // Quiet peers: adopt exactly the committed maximum.
    let quiet = rejoin_dversion_with(vec![
        answer(0, 4, false, None),
        answer(1, 4, false, None),
        answer(2, 4, false, None),
    ]);
    assert_eq!(quiet, 4);

    // A prepared-but-undecided slot names the in-flight version exactly.
    let prepared = rejoin_dversion_with(vec![
        answer(0, 4, false, None),
        answer(1, 4, true, Some(5)),
        answer(2, 4, false, None),
    ]);
    assert_eq!(prepared, 5);

    // An exclusive lock with no prepared slot hides the version, but the
    // one possible in-flight write commits at committed-max + 1.
    let locked = rejoin_dversion_with(vec![
        answer(0, 4, true, None),
        answer(1, 4, false, None),
        answer(2, 4, false, None),
    ]);
    assert_eq!(locked, 5);
}
