//! Group-commit durability properties (DESIGN.md §10).
//!
//! Two properties anchor the optimisation's correctness argument:
//!
//! 1. *Byte identity*: a journal built by batched appends is
//!    byte-for-byte the journal built by sequential appends of the same
//!    delta sequence — group commit changes **when** the commit pointer
//!    advances, never **what** the journal says. Replay therefore cannot
//!    distinguish the two.
//! 2. *Crash containment*: a crash mid-coalesce loses exactly the
//!    buffered (never-acknowledged) suffix. The recovered replica equals
//!    the committed journal prefix as it stood before the crash — no
//!    flushed delta is lost, no unflushed delta resurrects.

use std::sync::Arc;

use bytes::Bytes;
use coterie_core::{
    ClientRequest, Durable, DurableDelta, FaultKind, FramedJournal, LogEntry, OpId, PartialWrite,
    ProtocolConfig, ProtocolEvent, Rng64, StepDriver,
};
use coterie_quorum::{GridCoterie, MajorityCoterie, NodeId};
use coterie_simnet::SimDuration;
use proptest::prelude::*;

const N_PAGES: usize = 4;

fn config() -> ProtocolConfig {
    ProtocolConfig::new(Arc::new(GridCoterie::new()), 4).pages(N_PAGES)
}

/// Applies one random mutation to `state` — drawn from the kinds of
/// changes the protocol actually makes — and returns its shadow diff.
fn mutate(state: &mut Durable, rng: &mut Rng64) -> Option<DurableDelta> {
    let old = state.clone();
    match rng.below(6) {
        0 | 1 => {
            // A committed write: pages, version, and log move together.
            let page = rng.below(N_PAGES as u64) as u16;
            let write =
                PartialWrite::new([(page, Bytes::from(rng.next_u64().to_le_bytes().to_vec()))]);
            state.object.apply(&write);
            state.version += 1;
            state.log.push(LogEntry {
                version: state.version,
                write,
            });
        }
        2 => {
            // Stale-marking flip.
            state.stale = !state.stale;
            state.dversion = state.version + rng.below(3);
        }
        3 => {
            // Atomic epoch installation: number and list change together.
            state.enumber += 1;
            state.elist = (0..4).map(NodeId).filter(|_| rng.below(4) > 0).collect();
            state.last_good = state.elist.clone();
        }
        4 => {
            // A coordinator decision record (append-only map).
            state.op_counter += 1;
            let id = OpId {
                node: NodeId(rng.below(4) as u32),
                seq: state.op_counter,
            };
            state.decisions.insert(id, rng.below(2) == 0);
        }
        _ => {
            // Quarantine bookkeeping.
            state.quarantine_fence = state.op_counter;
            state.rejoin_pending = !state.rejoin_pending;
        }
    }
    DurableDelta::diff(&old, state)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Batched appends produce the byte-identical journal image, and
    /// replaying either image reconstructs the tracked state.
    #[test]
    fn batched_journal_is_byte_identical(seed in any::<u64>(), n in 1usize..48) {
        let config = config();
        let mut rng = Rng64::new(seed);
        let mut state = Durable::pristine(&config);
        let mut deltas = Vec::new();
        while deltas.len() < n {
            if let Some(d) = mutate(&mut state, &mut rng) {
                deltas.push(d);
            }
        }

        let mut sequential = FramedJournal::new();
        for d in &deltas {
            sequential.append_delta(d);
        }
        let mut batched = FramedJournal::new();
        let mut i = 0;
        while i < deltas.len() {
            let end = (i + 1 + rng.below(6) as usize).min(deltas.len());
            batched.append_batch(&deltas[i..end]);
            i = end;
        }

        prop_assert_eq!(sequential.bytes(), batched.bytes());
        prop_assert_eq!(
            sequential.committed_records(),
            batched.committed_records()
        );
        let replay = batched.replay_checked(&config);
        prop_assert!(
            matches!(replay.verdict, coterie_core::ReplayVerdict::Clean),
            "verdict: {:?}",
            replay.verdict
        );
        prop_assert_eq!(replay.durable, state);
    }
}

/// Drives a random schedule on a fully-featured cluster. Returns the ids
/// of acknowledged writes.
fn random_schedule(
    driver: &mut StepDriver,
    rng: &mut Rng64,
    steps: usize,
    torn_flushes: bool,
) -> Vec<u64> {
    let n = driver.cluster_size() as u64;
    let mut next_id = 0u64;
    for _ in 0..steps {
        match rng.below(100) {
            // A crash mid-whatever (possibly mid-coalesce), then the
            // crash-containment check on the recovered replica below.
            0..=3 => {
                let node = NodeId(rng.below(n) as u32);
                if !driver.is_down(node) {
                    // The committed prefix as the disk holds it now;
                    // buffered (unacknowledged) deltas are not in it.
                    let disk_before = driver.replay_journal(node);
                    driver.crash(node);
                    driver.recover(node);
                    let recovered = &driver.node(node).durable;
                    assert_eq!(
                        recovered, &disk_before,
                        "recovery must equal the pre-crash committed prefix: \
                         nothing flushed lost, nothing unflushed resurrected"
                    );
                }
            }
            4..=6 if torn_flushes => {
                // PR-4 failpoint at the journal boundary: the next flush
                // tears, fail-stopping the node with a torn tail.
                driver.arm_storage_fault(NodeId(rng.below(n) as u32), FaultKind::TornWrite);
            }
            7..=14 => {
                let node = NodeId(rng.below(n) as u32);
                if !driver.is_down(node) {
                    next_id += 1;
                    let page = rng.below(N_PAGES as u64) as u16;
                    let write = PartialWrite::new([(
                        page,
                        Bytes::from(rng.next_u64().to_le_bytes().to_vec()),
                    )]);
                    driver.inject(node, ClientRequest::Write { id: next_id, write });
                }
            }
            _ => {
                let msgs = driver.pending_messages().len();
                if msgs > 0 && rng.below(4) > 0 {
                    driver.deliver(rng.below(msgs as u64) as usize);
                } else {
                    let timers = driver.pending_timers().len();
                    if timers > 0 {
                        driver.fire(rng.below(timers as u64) as usize);
                    } else {
                        driver.advance(SimDuration::from_millis(1));
                    }
                }
            }
        }
        // A torn flush fail-stops its node; bring it back through the
        // checked replay so the schedule keeps making progress.
        for i in 0..n {
            let node = NodeId(i as u32);
            if driver.is_down(node) && rng.below(3) == 0 {
                driver.recover(node);
            }
        }
    }
    // Armed one-shot faults can still fire during the drain and fail-stop
    // a node; keep recovering until the cluster quiesces with everyone up.
    loop {
        for i in 0..n {
            let node = NodeId(i as u32);
            if driver.is_down(node) {
                driver.recover(node);
            }
        }
        driver.run_for(SimDuration::from_secs(60));
        if (0..n).all(|i| !driver.is_down(NodeId(i as u32))) {
            break;
        }
    }
    driver
        .outputs()
        .iter()
        .filter_map(|(_, _, e)| match e {
            ProtocolEvent::WriteOk { id, .. } => Some(*id),
            _ => None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A crash mid-coalesce never loses an acknowledged delta and never
    /// resurrects an unacknowledged one: after every crash/recover pair
    /// the replica equals its pre-crash committed prefix (asserted inside
    /// the schedule), and every acknowledged write survives to the final
    /// quiesced state.
    #[test]
    fn crash_mid_coalesce_preserves_exactly_the_committed_prefix(seed in any::<u64>()) {
        let config = config()
            .write_batch(4)
            .pipeline(3)
            .group_commit(8, SimDuration::from_millis(2))
            .rng_seed(seed);
        let mut driver = StepDriver::new(4, config);
        let mut rng = Rng64::new(seed ^ 0xD1CE_CAFE);
        let acked = random_schedule(&mut driver, &mut rng, 400, true);

        // Every acknowledged write is durable cluster-wide: the quiesced
        // maximum version covers all acks, and each node's journal replay
        // equals its live durable state.
        let max_version = (0..4u32)
            .map(|i| driver.node(NodeId(i)).durable.version)
            .max()
            .unwrap_or(0);
        prop_assert!(
            max_version >= acked.len() as u64,
            "{} acked writes but max version {}",
            acked.len(),
            max_version
        );
        for i in 0..4u32 {
            let node = NodeId(i);
            prop_assert_eq!(
                &driver.replay_journal(node),
                &driver.node(node).durable,
                "node {} journal/live divergence",
                i
            );
        }
    }
}

/// Deterministic smoke for the batching + pipelining stats: a burst of
/// writes at one coordinator commits them all, shares rounds, and chains
/// at least one pipelined handoff.
#[test]
fn write_burst_batches_and_chains_rounds() {
    let config = ProtocolConfig::new(Arc::new(MajorityCoterie::new()), 3)
        .pages(N_PAGES)
        .write_batch(4)
        .pipeline(4)
        .rng_seed(7);
    let mut driver = StepDriver::new(3, config);
    for id in 1..=8u64 {
        let write =
            PartialWrite::new([((id % N_PAGES as u64) as u16, Bytes::from(vec![id as u8]))]);
        driver.inject(NodeId(0), ClientRequest::Write { id, write });
    }
    driver.run_for(SimDuration::from_secs(5));

    let oks = driver
        .outputs()
        .iter()
        .filter(|(_, _, e)| matches!(e, ProtocolEvent::WriteOk { .. }))
        .count();
    assert_eq!(oks, 8, "all writes must commit");
    let stats = &driver.node(NodeId(0)).stats;
    assert!(
        stats.batched_writes() >= 2,
        "expected shared rounds, got batched_writes = {}",
        stats.batched_writes()
    );
    assert!(
        stats.chained_rounds() >= 1,
        "expected a pipelined handoff, got chained_rounds = {}",
        stats.chained_rounds()
    );
}
