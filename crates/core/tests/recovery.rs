//! Targeted crash-recovery tests for the two-phase-commit machinery: the
//! paper relies on textbook atomic commit ([2]); these tests pin down the
//! blocking-2PC behaviours our implementation must get right — durable
//! prepared actions, presumed abort, decision-log recovery, and the lock
//! fencing of in-doubt transactions.

use bytes::Bytes;
use coterie_core::{ClientRequest, Mode, PartialWrite, ProtocolConfig, ProtocolEvent, ReplicaNode};
use coterie_quorum::{GridCoterie, MajorityCoterie, NodeId};
use coterie_simnet::{Sim, SimConfig, SimDuration, SimTime};
use std::sync::Arc;

fn cluster(n: usize, seed: u64, check_secs: u64) -> Sim<ReplicaNode> {
    let config = ProtocolConfig::new(Arc::new(MajorityCoterie::new()), n)
        .check_period(SimDuration::from_secs(check_secs));
    Sim::new(
        n,
        SimConfig {
            seed,
            ..Default::default()
        },
        |id| ReplicaNode::new(id, config.clone()),
    )
}

fn w(id: u64, data: &str) -> ClientRequest {
    ClientRequest::Write {
        id,
        write: PartialWrite::new([(0, Bytes::copy_from_slice(data.as_bytes()))]),
    }
}

#[test]
fn coordinator_crash_before_decision_presumed_aborts() {
    let mut sim = cluster(3, 1, 60);
    // Let a write run its permission phase, then kill the coordinator
    // right as prepares go out (~3-5 ms in): participants may have
    // prepared but no decision was logged.
    sim.schedule_external(SimTime::ZERO, NodeId(0), w(1, "doomed"));
    sim.schedule_crash(SimTime(4_000), NodeId(0));
    sim.run_for(SimDuration::from_secs(1));
    // Recover the coordinator: participants (and the coordinator itself,
    // if it prepared) must resolve via the decision log — presumed abort.
    sim.recover_now(NodeId(0));
    sim.run_for(SimDuration::from_secs(5));
    for id in 0..3u32 {
        let node = sim.node(NodeId(id));
        assert!(
            node.durable.prepared.is_none(),
            "node {id} stuck in-doubt after coordinator recovery"
        );
    }
    // Versions are 0 or 1 only (the write either aborted or committed);
    // no replica can have invented other versions.
    for id in 0..3u32 {
        assert!(sim.node(NodeId(id)).durable.version <= 1);
    }
    // A fresh write works afterwards.
    sim.schedule_external(sim.now(), NodeId(1), w(2, "after"));
    sim.run_for(SimDuration::from_secs(2));
    let ok = sim
        .take_outputs()
        .iter()
        .any(|(_, _, e)| matches!(e, ProtocolEvent::WriteOk { id: 2, .. }));
    assert!(ok, "system must recover to a writable state");
}

#[test]
fn participant_crash_after_prepare_recovers_the_outcome() {
    let mut sim = cluster(3, 2, 60);
    sim.schedule_external(SimTime::ZERO, NodeId(0), w(1, "x"));
    sim.run_for(SimDuration::from_secs(1));
    let evs = sim.take_outputs();
    assert!(evs
        .iter()
        .any(|(_, _, e)| matches!(e, ProtocolEvent::WriteOk { id: 1, .. })));
    // Crash a participant and recover it: no in-doubt state, and its
    // durable replica state is intact.
    let v_before = sim.node(NodeId(1)).durable.version;
    sim.crash_now(NodeId(1));
    sim.recover_now(NodeId(1));
    sim.run_for(SimDuration::from_secs(1));
    assert_eq!(sim.node(NodeId(1)).durable.version, v_before);
    assert!(sim.node(NodeId(1)).durable.prepared.is_none());
}

#[test]
fn many_coordinator_crashes_never_wedge_the_system() {
    // Fuzz the vulnerable window: writes arrive steadily while the
    // coordinator of every third write crashes shortly after starting and
    // recovers a second later.
    let mut sim = cluster(5, 3, 4);
    for i in 0..30u64 {
        let coord = NodeId((i % 5) as u32);
        let at = SimTime(i * 400_000);
        sim.schedule_external(at, coord, w(i, &format!("v{i}")));
        if i % 3 == 0 {
            sim.schedule_crash(SimTime(at.micros() + 3_000), coord);
            sim.schedule_recover(SimTime(at.micros() + 1_000_000), coord);
        }
    }
    sim.run_for(SimDuration::from_secs(40));
    // No replica may be left in-doubt or locked out: a final write from
    // every node must succeed.
    for id in 0..5u32 {
        assert!(
            sim.node(NodeId(id)).durable.prepared.is_none(),
            "node {id} left in-doubt"
        );
    }
    sim.take_outputs();
    sim.schedule_external(sim.now(), NodeId(2), w(1000, "final"));
    sim.run_for(SimDuration::from_secs(3));
    assert!(sim
        .take_outputs()
        .iter()
        .any(|(_, _, e)| matches!(e, ProtocolEvent::WriteOk { id: 1000, .. })));
    // And the committed-version history is still gap-free: replay versions.
    let max_v = (0..5u32)
        .map(|i| sim.node(NodeId(i)).durable.version)
        .max()
        .unwrap();
    assert!(
        max_v >= 10,
        "most writes should have committed, got {max_v}"
    );
}

#[test]
fn static_mode_never_runs_epoch_checks() {
    let config = ProtocolConfig::new(Arc::new(GridCoterie::new()), 4).static_mode();
    assert!(matches!(config.mode, Mode::Static));
    let mut sim = Sim::new(
        4,
        SimConfig {
            seed: 4,
            ..Default::default()
        },
        |id| ReplicaNode::new(id, config.clone()),
    );
    sim.crash_now(NodeId(3));
    sim.run_for(SimDuration::from_secs(30));
    for id in 0..3u32 {
        assert_eq!(sim.node(NodeId(id)).durable.enumber, 0);
        assert_eq!(sim.node(NodeId(id)).stats.epoch_changes(), 0);
    }
}

#[test]
fn safety_threshold_extras_receive_the_update() {
    // With threshold = 3 on a 9-node grid, every committed write must land
    // on at least 3 replicas whenever 3 are reachable, even if the quorum's
    // good set was smaller.
    let config = ProtocolConfig::new(Arc::new(GridCoterie::new()), 9)
        .check_period(SimDuration::from_secs(2))
        .safety(3);
    let mut sim = Sim::new(
        9,
        SimConfig {
            seed: 5,
            ..Default::default()
        },
        |id| ReplicaNode::new(id, config.clone()),
    );
    for i in 0..15u64 {
        sim.schedule_external(
            SimTime(i * 300_000),
            NodeId((i % 9) as u32),
            w(i, &format!("d{i}")),
        );
    }
    sim.run_for(SimDuration::from_secs(10));
    let evs = sim.take_outputs();
    let oks: Vec<usize> = evs
        .iter()
        .filter_map(|(_, _, e)| match e {
            ProtocolEvent::WriteOk {
                replicas_touched, ..
            } => Some(*replicas_touched),
            _ => None,
        })
        .collect();
    assert_eq!(oks.len(), 15);
    // Count holders of the max version: must be >= 3.
    let max_v = (0..9u32)
        .map(|i| sim.node(NodeId(i)).durable.version)
        .max()
        .unwrap();
    let holders = (0..9u32)
        .filter(|&i| sim.node(NodeId(i)).durable.version == max_v)
        .count();
    assert!(holders >= 3, "only {holders} hold the newest version");
}
