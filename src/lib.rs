//! # dyncoterie
//!
//! Facade crate for the reproduction of Rabinovich & Lazowska, *"Improving
//! Fault Tolerance and Supporting Partial Writes in Structured Coterie
//! Protocols for Replicated Objects"* (SIGMOD 1992).
//!
//! Re-exports the workspace crates:
//!
//! * [`quorum`] — coterie rules (grid, majority, tree, weighted, ROWA).
//! * [`simnet`] — deterministic discrete-event distributed-system simulator.
//! * [`protocol`] — the dynamic epoch protocol with partial writes and the
//!   static baselines.
//! * [`markov`] — continuous-time Markov chains and the availability models.
//! * [`harness`] — workloads, fault injection, metrics, experiments.
//!
//! See `examples/quickstart.rs` for an end-to-end tour and DESIGN.md for
//! the system inventory.

pub use coterie_core as protocol;
pub use coterie_harness as harness;
pub use coterie_markov as markov;
pub use coterie_quorum as quorum;
pub use coterie_simnet as simnet;
